//! Static analysis passes over a [`SymbolicSchedule`].
//!
//! Each pass proves one safety property of the predicted schedule and
//! emits a typed [`StaticViolation`] with a concrete witness when the
//! property fails:
//!
//! 1. **Extent-overlap freedom** — no two ranks' puts overlap inside a
//!    window slot (interval sweep per round).
//! 2. **Window/buffer bounds** — every put and flush stays inside its
//!    slot; round volume fits the buffer; flush offsets align with the
//!    round window.
//! 3. **Round/collective agreement** — per-member byte sums, per-round
//!    byte sums, and the partition total all agree.
//! 4. **Fence-graph acyclicity** — the collective visit order induces
//!    an acyclic partition digraph (deadlock freedom by construction).
//! 5. **Fault-plan reachability** — every fault spec maps to a real
//!    (partition, round, segment); degraded paths stay byte-covering.
//! 6. **Tier capacity** — the double buffer fits the assigned memory
//!    tier.
//! 7. **Merged-put arithmetic** — the wire-level put view is an exact
//!    repartition of the per-chunk view: every merged put is the
//!    back-to-back concatenation of the chunk puts it claims to carry
//!    (same slot, peer, replay class) and per-round wire bytes equal
//!    per-round chunk bytes.
//!
//! The conformance variants (`UnmappedDynamicEvent`,
//! `UndischargedStaticEvent`, `OrderViolation`) are emitted by the
//! dynamic-trace bridge in `tapioca-check`, which shares this type so
//! callers see one violation vocabulary.

use std::fmt;

use tapioca_mpi::FaultSpec;
use tapioca_pfs::AccessMode;
use tapioca_topology::Rank;

use crate::autotune::{Candidate, TierAssignment};
use crate::config::TapiocaConfig;

use super::symbolic::{SymbolicPartition, SymbolicSchedule};

/// A statically provable defect in a predicted schedule, or (for the
/// conformance variants) a divergence between a dynamic trace and the
/// static schedule. Every variant carries a concrete witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticViolation {
    /// Two ranks' puts overlap inside the same window slot.
    ExtentOverlap {
        /// Global partition index.
        partition: u32,
        /// Round the overlap occurs in.
        round: u32,
        /// First writer.
        rank_a: Rank,
        /// Second writer.
        rank_b: Rank,
        /// `[start, end)` window range of the first put.
        range_a: (u64, u64),
        /// `[start, end)` window range of the second put.
        range_b: (u64, u64),
    },
    /// A put or flush escapes its window slot, or a round's volume
    /// exceeds the buffer.
    WindowOverflow {
        /// Global partition index.
        partition: u32,
        /// Round of the offending access.
        round: u32,
        /// Rank performing the access (the aggregator for flushes).
        rank: Rank,
        /// Offset of the access within the window/buffer.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// The bound it violates.
        limit: u64,
    },
    /// A flush segment's buffer offset disagrees with its file offset
    /// relative to the round window.
    MisalignedFlush {
        /// Global partition index.
        partition: u32,
        /// Round of the segment.
        round: u32,
        /// Absolute file offset of the segment.
        file_offset: u64,
        /// Buffer offset the schedule recorded.
        buf_offset: u64,
        /// Buffer offset implied by the round window.
        expected: u64,
    },
    /// Member/round/partition byte accounting disagrees.
    RoundMismatch {
        /// Global partition index.
        partition: u32,
        /// Human-readable witness of the disagreement.
        detail: String,
    },
    /// The collective visit order induces a cycle over partitions —
    /// ranks would deadlock on fences.
    FenceCycle {
        /// Global partition indices forming the cycle.
        cycle: Vec<u32>,
    },
    /// A fault-plan entry cannot fire on this schedule.
    FaultUnreachable {
        /// Rendered fault spec.
        fault: String,
        /// Why it cannot fire.
        reason: String,
    },
    /// A crash is injected into a partition with no standby to elect.
    NoStandby {
        /// Global partition index.
        partition: u32,
        /// Crash round.
        round: u32,
    },
    /// A round's flush segments do not cover its aggregated bytes.
    UncoveredBytes {
        /// Global partition index.
        partition: u32,
        /// Round with the coverage gap.
        round: u32,
        /// Bytes the round aggregates.
        expected: u64,
        /// Bytes the flush segments cover.
        covered: u64,
    },
    /// The double buffer does not fit the assigned memory tier.
    CapacityExceeded {
        /// Tier name.
        tier: &'static str,
        /// Bytes the double buffer needs.
        required: u64,
        /// Tier capacity.
        capacity: u64,
    },
    /// The wire-level put view disagrees with the per-chunk view: a
    /// merged put is not the exact concatenation of the chunk puts it
    /// claims to carry, or the round's wire bytes diverge.
    MergedPutMismatch {
        /// Global partition index.
        partition: u32,
        /// Round of the disagreement.
        round: u32,
        /// Human-readable witness.
        detail: String,
    },
    /// A dynamic trace event has no counterpart in the static schedule.
    UnmappedDynamicEvent {
        /// Lane the event was recorded on.
        rank: Rank,
        /// Rendered event and why it failed to map.
        detail: String,
    },
    /// A static-schedule event was never observed in the dynamic trace.
    UndischargedStaticEvent {
        /// Global partition index.
        partition: u32,
        /// What remained undischarged.
        detail: String,
    },
    /// Dynamic events appear in an order no linearization of the
    /// static schedule allows.
    OrderViolation {
        /// Lane the out-of-order event was recorded on.
        rank: Rank,
        /// What went backwards.
        detail: String,
    },
}

impl StaticViolation {
    /// Stable kebab-case identifier for the violation class.
    pub fn code(&self) -> &'static str {
        match self {
            StaticViolation::ExtentOverlap { .. } => "extent-overlap",
            StaticViolation::WindowOverflow { .. } => "window-overflow",
            StaticViolation::MisalignedFlush { .. } => "misaligned-flush",
            StaticViolation::RoundMismatch { .. } => "round-mismatch",
            StaticViolation::FenceCycle { .. } => "fence-cycle",
            StaticViolation::FaultUnreachable { .. } => "fault-unreachable",
            StaticViolation::NoStandby { .. } => "no-standby",
            StaticViolation::UncoveredBytes { .. } => "uncovered-bytes",
            StaticViolation::CapacityExceeded { .. } => "capacity-exceeded",
            StaticViolation::MergedPutMismatch { .. } => "merged-put-mismatch",
            StaticViolation::UnmappedDynamicEvent { .. } => "unmapped-dynamic-event",
            StaticViolation::UndischargedStaticEvent { .. } => "undischarged-static-event",
            StaticViolation::OrderViolation { .. } => "order-violation",
        }
    }
}

impl fmt::Display for StaticViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticViolation::ExtentOverlap {
                partition,
                round,
                rank_a,
                rank_b,
                range_a,
                range_b,
            } => write!(
                f,
                "[extent-overlap] partition {partition} round {round}: rank {rank_a} \
                 window [{}, {}) overlaps rank {rank_b} window [{}, {})",
                range_a.0, range_a.1, range_b.0, range_b.1
            ),
            StaticViolation::WindowOverflow { partition, round, rank, offset, len, limit } => {
                write!(
                    f,
                    "[window-overflow] partition {partition} round {round}: rank {rank} \
                     access at offset {offset} len {len} exceeds bound {limit}"
                )
            }
            StaticViolation::MisalignedFlush {
                partition,
                round,
                file_offset,
                buf_offset,
                expected,
            } => write!(
                f,
                "[misaligned-flush] partition {partition} round {round}: segment at file \
                 offset {file_offset} has buf offset {buf_offset}, window implies {expected}"
            ),
            StaticViolation::RoundMismatch { partition, detail } => {
                write!(f, "[round-mismatch] partition {partition}: {detail}")
            }
            StaticViolation::FenceCycle { cycle } => {
                write!(f, "[fence-cycle] collective visit order cycles through partitions ")?;
                for (i, p) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            StaticViolation::FaultUnreachable { fault, reason } => {
                write!(f, "[fault-unreachable] {fault}: {reason}")
            }
            StaticViolation::NoStandby { partition, round } => write!(
                f,
                "[no-standby] partition {partition}: crash at round {round} has no \
                 standby member to re-elect"
            ),
            StaticViolation::UncoveredBytes { partition, round, expected, covered } => write!(
                f,
                "[uncovered-bytes] partition {partition} round {round}: flush segments \
                 cover {covered} of {expected} aggregated bytes"
            ),
            StaticViolation::CapacityExceeded { tier, required, capacity } => write!(
                f,
                "[capacity-exceeded] tier {tier}: double buffer needs {required} bytes, \
                 capacity is {capacity}"
            ),
            StaticViolation::MergedPutMismatch { partition, round, detail } => {
                write!(f, "[merged-put-mismatch] partition {partition} round {round}: {detail}")
            }
            StaticViolation::UnmappedDynamicEvent { rank, detail } => {
                write!(f, "[unmapped-dynamic-event] rank {rank}: {detail}")
            }
            StaticViolation::UndischargedStaticEvent { partition, detail } => {
                write!(f, "[undischarged-static-event] partition {partition}: {detail}")
            }
            StaticViolation::OrderViolation { rank, detail } => {
                write!(f, "[order-violation] rank {rank}: {detail}")
            }
        }
    }
}

/// Pass 1: no two ranks' puts overlap inside a window slot. Replay
/// puts target a fresh window and are swept separately from the doomed
/// crash-round fill.
fn check_extent_overlap(part: &SymbolicPartition, out: &mut Vec<StaticViolation>) {
    for round in &part.rounds {
        for replay in [false, true] {
            let mut ivs: Vec<(u64, u64, Rank)> = round
                .puts
                .iter()
                .filter(|p| p.replay == replay && p.bytes > 0)
                .map(|p| (p.window_offset, p.window_offset + p.bytes, p.rank))
                .collect();
            ivs.sort_unstable();
            for w in ivs.windows(2) {
                let (a, b) = (w[0], w[1]);
                if b.0 < a.1 && a.2 != b.2 {
                    out.push(StaticViolation::ExtentOverlap {
                        partition: part.partition,
                        round: round.round,
                        rank_a: a.2,
                        rank_b: b.2,
                        range_a: (a.0, a.1),
                        range_b: (b.0, b.1),
                    });
                }
            }
        }
    }
}

/// Pass 2: window/buffer bounds and flush alignment.
fn check_window_bounds(
    part: &SymbolicPartition,
    buffer_size: u64,
    out: &mut Vec<StaticViolation>,
) {
    let b = buffer_size;
    for round in &part.rounds {
        if round.bytes > b {
            out.push(StaticViolation::WindowOverflow {
                partition: part.partition,
                round: round.round,
                rank: part.aggregator.unwrap_or(0),
                offset: 0,
                len: round.bytes,
                limit: b,
            });
        }
        for p in &round.puts {
            let lo = p.slot * b;
            let hi = (p.slot + 1) * b;
            if p.window_offset < lo || p.window_offset + p.bytes > hi {
                out.push(StaticViolation::WindowOverflow {
                    partition: part.partition,
                    round: round.round,
                    rank: p.rank,
                    offset: p.window_offset,
                    len: p.bytes,
                    limit: hi,
                });
            }
        }
        let win_start = part.extent.0 + u64::from(round.round) * b;
        for seg in &round.flushes {
            if seg.buf_offset + seg.len > b {
                out.push(StaticViolation::WindowOverflow {
                    partition: part.partition,
                    round: round.round,
                    rank: part.aggregator.unwrap_or(0),
                    offset: seg.buf_offset,
                    len: seg.len,
                    limit: b,
                });
            }
            let expected = seg.file_offset.saturating_sub(win_start);
            if seg.file_offset < win_start || seg.buf_offset != expected {
                out.push(StaticViolation::MisalignedFlush {
                    partition: part.partition,
                    round: round.round,
                    file_offset: seg.file_offset,
                    buf_offset: seg.buf_offset,
                    expected,
                });
            }
        }
    }
}

/// Pass 3: member/round/partition byte accounting agrees.
fn check_round_agreement(part: &SymbolicPartition, out: &mut Vec<StaticViolation>) {
    let mut by_member: Vec<u64> = vec![0; part.members.len()];
    let mut total = 0u64;
    for round in &part.rounds {
        let filled: u64 = round.puts.iter().filter(|p| !p.replay).map(|p| p.bytes).sum();
        if filled != round.bytes {
            out.push(StaticViolation::RoundMismatch {
                partition: part.partition,
                detail: format!(
                    "round {} aggregates {} bytes but member puts fill {}",
                    round.round, round.bytes, filled
                ),
            });
        }
        for p in round.puts.iter().filter(|p| !p.replay) {
            if let Some(i) = part.members.iter().position(|&m| m == p.rank) {
                by_member[i] += p.bytes;
            }
        }
        total += round.bytes;
    }
    if total != part.total_bytes {
        out.push(StaticViolation::RoundMismatch {
            partition: part.partition,
            detail: format!(
                "rounds sum to {total} bytes but partition totals {}",
                part.total_bytes
            ),
        });
    }
    for (i, &m) in part.members.iter().enumerate() {
        if by_member[i] != part.member_bytes[i] {
            out.push(StaticViolation::RoundMismatch {
                partition: part.partition,
                detail: format!(
                    "member {m} puts {} bytes but is declared for {}",
                    by_member[i], part.member_bytes[i]
                ),
            });
        }
    }
}

/// Pass 4: the visit-order digraph over partitions is acyclic. Edges
/// go from each partition a rank visits to the next one it visits;
/// a cycle means two ranks enter a pair of partitions in opposite
/// orders and would deadlock on the subgroup fences.
fn check_fence_acyclic(sym: &SymbolicSchedule, out: &mut Vec<StaticViolation>) {
    for group in &sym.groups {
        let n = group.partitions.len();
        if n == 0 {
            continue;
        }
        let base = group.partition_base as usize;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (_, visits) in &group.visit_order {
            for w in visits.windows(2) {
                let (a, b) = (w[0] as usize - base, w[1] as usize - base);
                if !adj[a].contains(&b) {
                    adj[a].push(b);
                }
            }
        }
        // Iterative DFS with colouring; on finding a back edge, walk
        // the stack to extract the cycle witness.
        let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
        for start in 0..n {
            if colour[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = 1;
            while let Some(frame) = stack.last_mut() {
                let node = frame.0;
                if frame.1 < adj[node].len() {
                    let to = adj[node][frame.1];
                    frame.1 += 1;
                    match colour[to] {
                        0 => {
                            colour[to] = 1;
                            stack.push((to, 0));
                        }
                        1 => {
                            let pos = stack
                                .iter()
                                .position(|&(v, _)| v == to)
                                .unwrap_or(0);
                            let mut cycle: Vec<u32> = stack[pos..]
                                .iter()
                                .map(|&(v, _)| (base + v) as u32)
                                .collect();
                            cycle.push(to as u32 + base as u32);
                            out.push(StaticViolation::FenceCycle { cycle });
                            return;
                        }
                        _ => {}
                    }
                } else {
                    colour[node] = 2;
                    stack.pop();
                }
            }
        }
    }
}

/// Pass 5: fault-plan reachability and degraded-path byte coverage.
fn check_fault_reachability(
    sym: &SymbolicSchedule,
    cfg: &TapiocaConfig,
    out: &mut Vec<StaticViolation>,
) {
    // Byte coverage first: every round's flush segments must cover its
    // aggregated volume exactly, degraded or not — the degraded direct
    // writes reuse the same segment extents.
    for part in sym.groups.iter().flat_map(|g| &g.partitions) {
        for round in &part.rounds {
            let covered: u64 = round.flushes.iter().map(|s| s.len).sum();
            if covered != round.bytes {
                out.push(StaticViolation::UncoveredBytes {
                    partition: part.partition,
                    round: round.round,
                    expected: round.bytes,
                    covered,
                });
            }
        }
    }

    let Some(fp) = cfg.faults.as_ref() else { return };
    // Fault partition indices are schedule-local per group; a spec is
    // reachable if at least one group realises it.
    let local = |p: u32| -> Vec<&SymbolicPartition> {
        sym.groups
            .iter()
            .filter_map(|g| g.partitions.get(p as usize))
            .collect()
    };
    for spec in &fp.specs {
        match *spec {
            FaultSpec::AggregatorCrash { partition, round } => {
                let parts = local(partition);
                if parts.is_empty() {
                    out.push(StaticViolation::FaultUnreachable {
                        fault: format!("crash={partition}@{round}"),
                        reason: format!("no group has a partition {partition}"),
                    });
                    continue;
                }
                if sym.mode != AccessMode::Write {
                    out.push(StaticViolation::FaultUnreachable {
                        fault: format!("crash={partition}@{round}"),
                        reason: "aggregator crashes only fire on writes".into(),
                    });
                    continue;
                }
                let in_range = parts.iter().any(|p| (round as usize) < p.rounds.len());
                if !in_range {
                    out.push(StaticViolation::FaultUnreachable {
                        fault: format!("crash={partition}@{round}"),
                        reason: format!(
                            "round {round} out of range (partition has {} rounds)",
                            parts.iter().map(|p| p.rounds.len()).max().unwrap_or(0)
                        ),
                    });
                    continue;
                }
                for p in &parts {
                    if (round as usize) < p.rounds.len() && p.members.len() < 2 {
                        out.push(StaticViolation::NoStandby {
                            partition: p.partition,
                            round,
                        });
                    } else if p.degrade_round.is_some_and(|dr| dr <= round)
                        && p.members.len() >= 2
                    {
                        out.push(StaticViolation::FaultUnreachable {
                            fault: format!("crash={partition}@{round}"),
                            reason: format!(
                                "partition {} degrades at round {} before the crash",
                                p.partition,
                                p.degrade_round.unwrap_or(0)
                            ),
                        });
                    }
                }
            }
            FaultSpec::FlushStall { partition, round } => {
                let hit = local(partition).iter().any(|p| {
                    p.rounds
                        .get(round as usize)
                        .is_some_and(|r| !r.flushes.is_empty())
                });
                if !hit {
                    out.push(StaticViolation::FaultUnreachable {
                        fault: format!("stall={partition}@{round}"),
                        reason: format!(
                            "no partition {partition} flushes a segment in round {round}"
                        ),
                    });
                }
            }
            FaultSpec::FlushSlowdown { partition: Some(p), .. } => {
                if local(p).is_empty() {
                    out.push(StaticViolation::FaultUnreachable {
                        fault: format!("slow@{p}"),
                        reason: format!("no group has a partition {p}"),
                    });
                }
            }
            FaultSpec::FlushSlowdown { partition: None, .. }
            | FaultSpec::TransientFlushError { .. }
            | FaultSpec::LinkDegrade { .. } => {}
        }
    }
}

/// Pass 6: the double buffer fits the given memory capacity.
fn check_capacity(
    sym: &SymbolicSchedule,
    tier: &'static str,
    capacity: u64,
    out: &mut Vec<StaticViolation>,
) {
    let required = 2 * sym.buffer_size;
    if required > capacity {
        out.push(StaticViolation::CapacityExceeded { tier, required, capacity });
    }
}

/// Pass 7: the wire-level put view is an exact repartition of the
/// per-chunk view. Per round and replay class: each ordinary
/// (`coalesced == 0`) wire put must match a chunk put verbatim; each
/// merged (`coalesced == n >= 2`) wire put must be the back-to-back
/// concatenation of exactly `n` chunk puts — contiguous window
/// offsets summing to its byte count, all in the same slot with the
/// same peer. Byte totals must agree, so coalescing provably moves no
/// byte and invents none.
fn check_merged_put_arithmetic(part: &SymbolicPartition, out: &mut Vec<StaticViolation>) {
    for round in &part.rounds {
        for replay in [false, true] {
            let mut chunk: Vec<_> = round
                .puts
                .iter()
                .filter(|p| p.replay == replay)
                .map(|p| (p.window_offset, p.bytes, p.slot, p.peer))
                .collect();
            chunk.sort_unstable();
            let chunk_bytes: u64 = chunk.iter().map(|&(_, b, _, _)| b).sum();
            let mut wire: Vec<_> =
                round.wire_puts.iter().filter(|p| p.replay == replay).collect();
            wire.sort_unstable_by_key(|p| p.window_offset);
            let wire_bytes: u64 = wire.iter().map(|p| p.bytes).sum();
            if wire_bytes != chunk_bytes {
                out.push(StaticViolation::MergedPutMismatch {
                    partition: part.partition,
                    round: round.round,
                    detail: format!(
                        "wire puts carry {wire_bytes} bytes, chunk puts {chunk_bytes}                          (replay={replay})"
                    ),
                });
            }
            for w in wire {
                if w.coalesced == 1 {
                    out.push(StaticViolation::MergedPutMismatch {
                        partition: part.partition,
                        round: round.round,
                        detail: format!(
                            "wire put at {} claims to coalesce a single chunk — runs                              require >= 2",
                            w.window_offset
                        ),
                    });
                    continue;
                }
                // Ordinary puts must match one chunk; merged puts must
                // concatenate exactly `coalesced` contiguous chunks.
                let want = if w.coalesced == 0 { 1 } else { w.coalesced as usize };
                let mut cursor = w.window_offset;
                let mut taken = 0usize;
                while taken < want && cursor < w.window_offset + w.bytes {
                    match chunk
                        .iter()
                        .position(|&(off, _, slot, peer)| {
                            off == cursor && slot == w.slot && peer == w.peer
                        }) {
                        Some(i) => {
                            cursor += chunk[i].1;
                            chunk.swap_remove(i);
                            taken += 1;
                        }
                        None => break,
                    }
                }
                if taken != want || cursor != w.window_offset + w.bytes {
                    out.push(StaticViolation::MergedPutMismatch {
                        partition: part.partition,
                        round: round.round,
                        detail: format!(
                            "wire put rank {} at [{}, {}) (coalesced={}) matched {taken}                              chunk puts covering [{}, {}) (replay={replay})",
                            w.rank,
                            w.window_offset,
                            w.window_offset + w.bytes,
                            w.coalesced,
                            w.window_offset,
                            cursor
                        ),
                    });
                }
            }
        }
    }
}

/// Run every static pass over a symbolic schedule, bounding the double
/// buffer by the given tier capacity. Violations are returned in pass
/// order; an empty vector is a proof the predicted schedule is safe.
pub fn analyze_with_capacity(
    sym: &SymbolicSchedule,
    cfg: &TapiocaConfig,
    tier: &'static str,
    capacity: u64,
) -> Vec<StaticViolation> {
    let mut out = Vec::new();
    for part in sym.groups.iter().flat_map(|g| &g.partitions) {
        check_extent_overlap(part, &mut out);
        check_window_bounds(part, sym.buffer_size, &mut out);
        check_round_agreement(part, &mut out);
        check_merged_put_arithmetic(part, &mut out);
    }
    check_fence_acyclic(sym, &mut out);
    check_fault_reachability(sym, cfg, &mut out);
    check_capacity(sym, tier, capacity, &mut out);
    out
}

/// Run every static pass with the default DRAM capacity bound.
pub fn analyze(sym: &SymbolicSchedule, cfg: &TapiocaConfig) -> Vec<StaticViolation> {
    let tier = TierAssignment::DramDirect;
    analyze_with_capacity(sym, cfg, tier.name(), tier.buffer_capacity())
}

/// Screen one autotune grid point statically, without deriving a full
/// symbolic schedule: candidates whose double buffer cannot fit their
/// assigned tier are illegal on any machine and need no simulation.
pub fn screen_candidate(cand: &Candidate) -> Option<StaticViolation> {
    let required = 2 * cand.buffer_size;
    let capacity = cand.tier.buffer_capacity();
    (required > capacity).then(|| StaticViolation::CapacityExceeded {
        tier: cand.tier.name(),
        required,
        capacity,
    })
}
