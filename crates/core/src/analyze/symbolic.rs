//! Symbolic schedule derivation: expand `(config, topology,
//! decomposition)` into the complete predicted event structure of a
//! collective — partitions, rounds, window slots, put/flush extents,
//! election outcomes, re-election standbys, and degrade points — with
//! zero executor or netsim involvement.
//!
//! The derivation reuses [`plan_group`](crate::sim_exec) verbatim, so
//! the symbolic schedule cannot drift from what the executors actually
//! compile: both start from the same `GroupPlan`.

use tapioca_pfs::{AccessMode, FileId};
use tapioca_topology::{MachineProfile, Rank, TopologyProvider};

use crate::config::TapiocaConfig;
use crate::error::Result;
use crate::schedule::compute_coalesce_plan;
use crate::sim_exec::{plan_group, CollectiveSpec};

/// One predicted RMA put: a member deposits one chunk into the
/// aggregator's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicPut {
    /// Global rank performing the put.
    pub rank: Rank,
    /// Absolute offset inside the double buffer (`slot * buffer_size +
    /// chunk buf_offset`).
    pub window_offset: u64,
    /// Chunk length, bytes.
    pub bytes: u64,
    /// Window slot (0 or 1) the put lands in.
    pub slot: u64,
    /// Global rank of the window owner the put targets (the standby
    /// from the crash round on).
    pub peer: Rank,
    /// True for the post-re-election replay copy of a crash-round put.
    pub replay: bool,
    /// Chunks this put carries on the wire: 0 for an ordinary per-chunk
    /// put, `>= 2` for a merged put forwarding a coalesced run. Only
    /// ever non-zero in [`SymbolicRound::wire_puts`].
    pub coalesced: u32,
}

/// One predicted flush segment: the aggregator writes a contiguous
/// window region to the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicFlush {
    /// Absolute file offset.
    pub file_offset: u64,
    /// Segment length, bytes.
    pub len: u64,
    /// Offset inside the round's window slot.
    pub buf_offset: u64,
    /// Injected flush failures before success (0 when unfaulted;
    /// `u32::MAX` for a stall).
    pub fail_attempts: u32,
}

/// One predicted round of a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicRound {
    /// Round index within the partition.
    pub round: u32,
    /// Window slot the round's flush reads from.
    pub slot: u64,
    /// Aggregated payload bytes this round.
    pub bytes: u64,
    /// Member puts filling the round's window (crash rounds list the
    /// doomed fill *and* the replay copies). Always per-chunk — the
    /// byte-attribution view passes 1-3 sweep.
    pub puts: Vec<SymbolicPut>,
    /// The *wire-level* view: the RMA operations that actually cross
    /// the interconnect. Without coalescing this mirrors `puts`
    /// exactly; with coalescing each [`CoalescedRun`]'s chunks are
    /// replaced by one merged put on the node leader's lane carrying
    /// `coalesced >= 2` chunks. This is what thread-mode traces record.
    ///
    /// [`CoalescedRun`]: crate::schedule::CoalescedRun
    pub wire_puts: Vec<SymbolicPut>,
    /// Flush segments draining the window.
    pub flushes: Vec<SymbolicFlush>,
}

/// Predicted aggregator crash and recovery for a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicCrash {
    /// Round at which the elected aggregator dies.
    pub round: u32,
    /// Global rank of the dying aggregator.
    pub old: Rank,
    /// Global rank of the re-elected standby.
    pub standby: Rank,
}

/// The complete predicted behaviour of one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicPartition {
    /// Global partition index (group base + schedule-local index),
    /// matching the `partition` field of trace events.
    pub partition: u32,
    /// File extent `[start, end)` the partition owns.
    pub extent: (u64, u64),
    /// Member global ranks, ascending.
    pub members: Vec<Rank>,
    /// Bytes each member contributes (parallel to `members`).
    pub member_bytes: Vec<u64>,
    /// Elected aggregator (global rank); `None` for empty partitions.
    pub aggregator: Option<Rank>,
    /// Lowest member (global rank) — the lane election/crash/degrade
    /// events are recorded on; `None` for empty partitions.
    pub lowest: Option<Rank>,
    /// Compiled aggregator crash, if the fault plan reaches one here.
    pub crash: Option<SymbolicCrash>,
    /// First round whose injected flush fault exhausts the retry
    /// budget: the thread runtime degrades to direct writes there.
    pub degrade_round: Option<u32>,
    /// Predicted rounds, ascending.
    pub rounds: Vec<SymbolicRound>,
    /// Total payload bytes across all rounds.
    pub total_bytes: u64,
}

/// The predicted schedule of one file group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicGroup {
    /// File the group writes/reads.
    pub file: FileId,
    /// Global partition index of the group's first partition.
    pub partition_base: u32,
    /// File span `(lo, hi)` covered by the group's declarations.
    pub span: (u64, u64),
    /// Partitions, ascending by index.
    pub partitions: Vec<SymbolicPartition>,
    /// Per member (global rank): the ascending global partition indices
    /// it participates in — the collective visit order every rank must
    /// follow, and the edge set of the fence graph.
    pub visit_order: Vec<(Rank, Vec<u32>)>,
}

/// The statically derived schedule of a whole collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicSchedule {
    /// Read or write.
    pub mode: AccessMode,
    /// Round buffer size, bytes (each window is two of these).
    pub buffer_size: u64,
    /// Whether flushes overlap the next round's fill.
    pub pipelining: bool,
    /// File groups, in spec order.
    pub groups: Vec<SymbolicGroup>,
}

impl SymbolicSchedule {
    /// Look up a partition by its global index.
    pub fn partition(&self, index: u32) -> Option<&SymbolicPartition> {
        self.groups.iter().flat_map(|g| &g.partitions).find(|p| p.partition == index)
    }

    /// Total predicted payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.groups
            .iter()
            .flat_map(|g| &g.partitions)
            .map(|p| p.total_bytes)
            .sum()
    }
}

/// Window slot a round's puts and flush use. Before any crash the
/// double buffer alternates `r % 2`; a crash at round `cr` creates a
/// fresh window whose slot base resets to `cr`, so the replay and all
/// later rounds count from there. The crash round's *original* fill
/// lands in the old window at `cr % 2` and is lost.
fn round_slot(r: u32, crash: Option<u32>) -> u64 {
    match crash {
        Some(cr) if r >= cr => u64::from((r - cr) % 2),
        _ => u64::from(r % 2),
    }
}

/// Derive the complete symbolic schedule for a collective. Pure: only
/// the schedule/election/fault derivations shared with the executors
/// run — no simulator, no threads, no I/O.
pub fn derive_symbolic(
    profile: &MachineProfile,
    spec: &CollectiveSpec,
    cfg: &TapiocaConfig,
) -> Result<SymbolicSchedule> {
    cfg.validate()?;
    let machine = &profile.machine;
    let b = cfg.buffer_size;
    let mut groups = Vec::with_capacity(spec.groups.len());
    let mut partition_base = 0u32;

    for group in &spec.groups {
        let gp = plan_group(machine, group, cfg, spec.mode)?;
        // Schedule ranks are group-local; coalescing is decided by the
        // *global* rank's node, exactly as the thread executor does.
        let cplan = (cfg.coalescing && spec.mode == AccessMode::Write)
            .then(|| compute_coalesce_plan(&gp.sched, |local| {
                machine.node_of_rank(group.ranks[local])
            }));
        let mut partitions = Vec::with_capacity(gp.sched.partitions.len());

        for part in &gp.sched.partitions {
            let members = gp.members_global[part.index].clone();
            let aggregator = members.get(gp.choices[part.index]).copied();
            let lowest = members.first().copied();
            let crash = gp
                .crashes
                .iter()
                .find(|c| c.partition == part.index)
                .map(|c| SymbolicCrash {
                    round: c.round,
                    old: aggregator.unwrap_or(0),
                    standby: members[c.standby],
                });
            let degrade_round = gp.degrade_round[part.index];

            // Gather puts per round from the per-rank chunk lists; the
            // thread executor performs exactly one put per chunk (or,
            // coalesced, one merged put per run on the leader's lane —
            // collected separately as the wire-level view).
            let mut puts_by_round: Vec<Vec<SymbolicPut>> =
                vec![Vec::new(); part.rounds.len()];
            let mut wire_by_round: Vec<Vec<SymbolicPut>> =
                vec![Vec::new(); part.rounds.len()];
            for (local, chunks) in gp.sched.chunks_by_rank.iter().enumerate() {
                for c in chunks {
                    if c.partition != part.index {
                        continue;
                    }
                    let rank = group.ranks[local];
                    let slot = round_slot(c.round, crash.map(|cr| cr.round));
                    let replayed = crash.is_some_and(|cr| c.round == cr.round);
                    // Original fill (lost in the crash round — it went
                    // to the doomed window at the pre-crash slot).
                    let fill_slot = if replayed { u64::from(c.round % 2) } else { slot };
                    let fill_peer = aggregator.unwrap_or(rank);
                    let live_peer = match crash {
                        Some(cr) if c.round >= cr.round => cr.standby,
                        _ => fill_peer,
                    };
                    let fill = SymbolicPut {
                        rank,
                        window_offset: fill_slot * b + c.buf_offset,
                        bytes: c.len,
                        slot: fill_slot,
                        peer: if replayed { fill_peer } else { live_peer },
                        replay: false,
                        coalesced: 0,
                    };
                    let in_run =
                        cplan.as_ref().is_some_and(|p| p.run_for_chunk(c).is_some());
                    puts_by_round[c.round as usize].push(fill);
                    if !in_run {
                        wire_by_round[c.round as usize].push(fill);
                    }
                    if replayed {
                        // Replay copy into slot 0 of the fresh window.
                        let replay = SymbolicPut {
                            rank,
                            window_offset: c.buf_offset,
                            bytes: c.len,
                            slot: 0,
                            peer: live_peer,
                            replay: true,
                            coalesced: 0,
                        };
                        puts_by_round[c.round as usize].push(replay);
                        if !in_run {
                            wire_by_round[c.round as usize].push(replay);
                        }
                    }
                }
            }
            // Merged wire puts: one per coalesced run, on the node
            // leader's lane, mirroring the fill/replay structure of the
            // chunks they fold.
            if let Some(plan) = &cplan {
                for run in plan.runs().iter().filter(|run| run.partition == part.index) {
                    let r = run.round;
                    let rank = group.ranks[run.leader];
                    let replayed = crash.is_some_and(|cr| r == cr.round);
                    let slot = round_slot(r, crash.map(|cr| cr.round));
                    let fill_slot = if replayed { u64::from(r % 2) } else { slot };
                    let fill_peer = aggregator.unwrap_or(rank);
                    let live_peer = match crash {
                        Some(cr) if r >= cr.round => cr.standby,
                        _ => fill_peer,
                    };
                    let n = run.chunks.len() as u32;
                    wire_by_round[r as usize].push(SymbolicPut {
                        rank,
                        window_offset: fill_slot * b + run.buf_offset,
                        bytes: run.len,
                        slot: fill_slot,
                        peer: if replayed { fill_peer } else { live_peer },
                        replay: false,
                        coalesced: n,
                    });
                    if replayed {
                        wire_by_round[r as usize].push(SymbolicPut {
                            rank,
                            window_offset: run.buf_offset,
                            bytes: run.len,
                            slot: 0,
                            peer: live_peer,
                            replay: true,
                            coalesced: n,
                        });
                    }
                }
            }

            let rounds: Vec<SymbolicRound> = part
                .rounds
                .iter()
                .enumerate()
                .map(|(r, round)| {
                    let r32 = r as u32;
                    let fp = cfg.faults.as_ref();
                    let flushes = round
                        .segments
                        .iter()
                        .enumerate()
                        .map(|(s, seg)| SymbolicFlush {
                            file_offset: seg.file_offset,
                            len: seg.len,
                            buf_offset: seg.buf_offset,
                            fail_attempts: fp
                                .and_then(|f| {
                                    f.flush_fault(part.index as u32, r32, s as u32)
                                })
                                .map_or(0, |h| h.fail_attempts),
                        })
                        .collect();
                    SymbolicRound {
                        round: r32,
                        slot: round_slot(r32, crash.map(|c| c.round)),
                        bytes: round.bytes,
                        puts: std::mem::take(&mut puts_by_round[r]),
                        wire_puts: std::mem::take(&mut wire_by_round[r]),
                        flushes,
                    }
                })
                .collect();

            partitions.push(SymbolicPartition {
                partition: partition_base + part.index as u32,
                extent: (part.start, part.end),
                members,
                member_bytes: part.member_bytes.clone(),
                aggregator,
                lowest,
                crash,
                degrade_round,
                rounds,
                total_bytes: part.total_bytes(),
            });
        }

        // Collective visit order: the thread executor walks partitions
        // ascending, entering only those it is a member of.
        let visit_order: Vec<(Rank, Vec<u32>)> = group
            .ranks
            .iter()
            .map(|&rank| {
                let visits = partitions
                    .iter()
                    .filter(|p| p.members.contains(&rank))
                    .map(|p| p.partition)
                    .collect();
                (rank, visits)
            })
            .collect();

        let nparts = partitions.len() as u32;
        groups.push(SymbolicGroup {
            file: group.file,
            partition_base,
            span: gp.sched.span,
            partitions,
            visit_order,
        });
        partition_base += nparts;
    }

    Ok(SymbolicSchedule {
        mode: spec.mode,
        buffer_size: b,
        pipelining: cfg.pipelining,
        groups,
    })
}
