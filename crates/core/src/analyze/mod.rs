//! Static aggregation-plan analysis.
//!
//! TAPIOCA's schedule is fully determined by `(TapiocaConfig,
//! topology, decomposition)`, so every safety property the dynamic
//! checker (`tapioca-check`) verifies after a run can be proven before
//! one: [`derive_symbolic`] expands the shared group plan into the
//! complete predicted event structure, and [`analyze`] runs the pass
//! catalogue over it, returning typed [`StaticViolation`]s with
//! witnesses. The conformance bridge in `tapioca-check::static_`
//! closes the loop by asserting every dynamic trace is a linearization
//! of this symbolic schedule.

pub mod passes;
pub mod symbolic;

pub use passes::{
    analyze, analyze_with_capacity, screen_candidate, StaticViolation,
};
pub use symbolic::{
    derive_symbolic, SymbolicCrash, SymbolicFlush, SymbolicGroup, SymbolicPartition,
    SymbolicPut, SymbolicRound, SymbolicSchedule,
};
