//! Aggregator-count and buffer-size selection.
//!
//! The paper notes that "the number of aggregators or the buffer size
//! needed in collective I/O remains still an open topic" (its ref. 19)
//! and reports hand-tuned values per experiment (16-32 per Pset on
//! Mira, 48-384 on Theta, buffer = stripe). This module encodes those
//! tuning rules as a heuristic, plus an empirical search that sweeps
//! candidate counts through the simulator — the offline auto-tuning a
//! production deployment would ship.

use tapioca_topology::{MachineProfile, StorageProfile};

use crate::config::TapiocaConfig;
use crate::error::{Result, TapiocaError};
use crate::sim_exec::{run_tapioca_sim, CollectiveSpec, StorageConfig};

/// Rule-based tuning: the paper's own settings, generalized.
///
/// * Lustre: buffer = stripe size (Table I's 1:1), aggregators = a small
///   multiple of the stripe count (the paper uses 1-8 per OST; 2 is the
///   robust middle of our `ablation_aggregators` sweep), capped at the
///   rank count.
/// * GPFS: buffer = 16 MB (the validated default), aggregators = 16 per
///   Pset group.
///
/// `group_ranks` is the number of ranks writing one file (a Pset's worth
/// under subfiling).
///
/// # Errors
/// [`TapiocaError::InvalidConfig`] when the storage config kind does not
/// match the machine profile.
pub fn rule_based(
    profile: &MachineProfile,
    storage: &StorageConfig,
    group_ranks: usize,
) -> Result<TapiocaConfig> {
    match (&profile.storage, storage) {
        (StorageProfile::Lustre { .. }, StorageConfig::Lustre(tun)) => Ok(TapiocaConfig {
            num_aggregators: (2 * tun.stripe_count).min(group_ranks).max(1),
            buffer_size: tun.stripe_size,
            ..Default::default()
        }),
        (StorageProfile::Gpfs { .. }, StorageConfig::Gpfs(_)) => Ok(TapiocaConfig {
            num_aggregators: 16.min(group_ranks).max(1),
            buffer_size: 16 * 1024 * 1024,
            ..Default::default()
        }),
        _ => Err(TapiocaError::InvalidConfig(
            "storage config kind does not match the machine profile".into(),
        )),
    }
}

/// Result of an empirical sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning configuration.
    pub best: TapiocaConfig,
    /// Every candidate with its simulated bandwidth (bytes/s).
    pub candidates: Vec<(TapiocaConfig, f64)>,
}

/// Empirical tuning: sweep aggregator counts around the rule-based
/// guess (x1/4 .. x4) through the simulator and keep the fastest.
///
/// This is an *offline* procedure over the declared workload — exactly
/// what `TAPIOCA_Init`'s information makes possible.
///
/// # Errors
/// Propagates [`TapiocaError`] from [`rule_based`] and the simulator.
pub fn empirical_sweep(
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
) -> Result<TuneResult> {
    let group_ranks = spec.groups.first().map(|g| g.ranks.len()).unwrap_or(1);
    let seed = rule_based(profile, storage, group_ranks)?;
    let base = seed.num_aggregators.max(4);
    let mut counts: Vec<usize> = [base / 4, base / 2, base, base * 2, base * 4]
        .into_iter()
        .filter(|&a| a >= 1 && a <= group_ranks)
        .collect();
    counts.dedup();

    let mut candidates = Vec::new();
    for a in counts {
        let cfg = TapiocaConfig { num_aggregators: a, ..seed.clone() };
        let rep = run_tapioca_sim(profile, storage, spec, &cfg)?;
        candidates.push((cfg, rep.bandwidth));
    }
    let best = candidates
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one candidate")
        .0
        .clone();
    Ok(TuneResult { best, candidates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::WriteDecl;
    use crate::sim_exec::GroupSpec;
    use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
    use tapioca_topology::{mira_profile, theta_profile, MIB};

    #[test]
    fn rule_based_matches_paper_tuning() {
        let theta = theta_profile(512, 16);
        let cfg = rule_based(
            &theta,
            &StorageConfig::Lustre(LustreTunables::theta_optimized()),
            8192,
        )
        .unwrap();
        assert_eq!(cfg.buffer_size, 8 * MIB, "buffer = stripe (Table I)");
        assert_eq!(cfg.num_aggregators, 96, "2 per OST");

        let mira = mira_profile(512, 16);
        let cfg =
            rule_based(&mira, &StorageConfig::Gpfs(GpfsTunables::mira_optimized()), 2048).unwrap();
        assert_eq!(cfg.num_aggregators, 16);
        assert_eq!(cfg.buffer_size, 16 * MIB);
    }

    #[test]
    fn rule_based_caps_at_group_size() {
        let theta = theta_profile(32, 4);
        let cfg = rule_based(
            &theta,
            &StorageConfig::Lustre(LustreTunables::theta_optimized()),
            10,
        )
        .unwrap();
        assert_eq!(cfg.num_aggregators, 10);
    }

    #[test]
    fn empirical_sweep_never_picks_a_loser() {
        let profile = theta_profile(64, 4);
        let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
        let n = 256;
        let per = MIB;
        let spec = CollectiveSpec {
            groups: vec![GroupSpec {
                file: 0,
                ranks: (0..n).collect(),
                decls: (0..n as u64)
                    .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                    .collect(),
            }],
            mode: AccessMode::Write,
        };
        let result = empirical_sweep(&profile, &storage, &spec).unwrap();
        let best_bw = result
            .candidates
            .iter()
            .find(|(c, _)| c.num_aggregators == result.best.num_aggregators)
            .expect("best is a candidate")
            .1;
        for (cfg, bw) in &result.candidates {
            assert!(best_bw >= *bw, "{:?} beats the chosen config", cfg.num_aggregators);
        }
        assert!(result.candidates.len() >= 3);
    }

    #[test]
    fn mismatched_storage_rejected() {
        let mira = mira_profile(128, 4);
        let err = rule_based(&mira, &StorageConfig::Lustre(LustreTunables::theta_optimized()), 100)
            .unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }
}
