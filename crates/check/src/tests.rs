//! Hand-crafted traces that each break exactly one pipeline invariant,
//! plus clean traces that must pass.

use tapioca_trace::{Phase, Trace, TraceEvent, TraceOp, NO_OFFSET, NO_PEER};

use crate::{check, ViolationKind};

fn ev(t: u64, rank: usize, round: u32, op: TraceOp, bytes: u64, offset: u64) -> TraceEvent {
    let phase = match op {
        TraceOp::RmaPut | TraceOp::Elect => Phase::Aggregation,
        TraceOp::Flush | TraceOp::Retry => Phase::Io,
        TraceOp::Fence | TraceOp::Crash | TraceOp::Reelect | TraceOp::Degrade => Phase::Sync,
    };
    TraceEvent {
        t_ns: t,
        rank,
        partition: 0,
        round,
        phase,
        op,
        bytes,
        offset,
        peer: if op == TraceOp::RmaPut { 0 } else { NO_PEER },
        coalesced: 0,
    }
}

/// A correct 2-rank, 2-round pipeline on partition 0: rank 0 is the
/// aggregator (buffer 64 B, double-buffered window of 128 B), rank 1 a
/// member. Each round: both put, close fence, flush, release fence.
fn good_events() -> Vec<TraceEvent> {
    vec![
        // round 0: puts into slot 0 ([0, 64))
        ev(10, 0, 0, TraceOp::RmaPut, 32, 0),
        ev(11, 1, 0, TraceOp::RmaPut, 32, 32),
        // close fence of round 0
        ev(20, 0, 0, TraceOp::Fence, 0, NO_OFFSET),
        ev(20, 1, 0, TraceOp::Fence, 0, NO_OFFSET),
        // flush of round 0 (file offset 0)
        ev(30, 0, 0, TraceOp::Flush, 64, 0),
        // release fence of round 0
        ev(40, 0, 0, TraceOp::Fence, 0, NO_OFFSET),
        ev(40, 1, 0, TraceOp::Fence, 0, NO_OFFSET),
        // round 1: puts into slot 1 ([64, 128))
        ev(50, 0, 1, TraceOp::RmaPut, 32, 64),
        ev(51, 1, 1, TraceOp::RmaPut, 32, 96),
        ev(60, 0, 1, TraceOp::Fence, 0, NO_OFFSET),
        ev(60, 1, 1, TraceOp::Fence, 0, NO_OFFSET),
        ev(70, 0, 1, TraceOp::Flush, 64, 64),
        ev(80, 0, 1, TraceOp::Fence, 0, NO_OFFSET),
        ev(80, 1, 1, TraceOp::Fence, 0, NO_OFFSET),
    ]
}

fn kinds(trace: &Trace) -> Vec<ViolationKind> {
    check(trace).into_iter().map(|v| v.kind).collect()
}

#[test]
fn clean_pipeline_passes() {
    assert_eq!(kinds(&Trace::from_events(good_events())), vec![]);
}

#[test]
fn empty_trace_passes() {
    assert_eq!(kinds(&Trace::default()), vec![]);
}

#[test]
fn put_outside_epoch_is_caught() {
    let mut evs = good_events();
    // Rank 1's round-1 put escapes backwards past both round-0 fences:
    // it now executes with 0 fences passed instead of 2.
    let put = evs
        .iter()
        .position(|e| e.rank == 1 && e.round == 1 && e.op == TraceOp::RmaPut)
        .unwrap();
    evs[put].t_ns = 12;
    let v = check(&Trace::from_events(evs));
    assert_eq!(
        v.iter().map(|v| v.kind).collect::<Vec<_>>(),
        vec![ViolationKind::PutOutsideEpoch]
    );
    assert!(v[0].message.contains("rank 1"), "{}", v[0].message);
    assert_eq!(v[0].kind.code(), "put-outside-epoch");
}

#[test]
fn concurrent_overlapping_puts_are_caught() {
    let mut evs = good_events();
    // Rank 1's round-0 put now collides with rank 0's bytes [0, 32):
    // both run in the same epoch with no fence between them.
    let put = evs
        .iter()
        .position(|e| e.rank == 1 && e.round == 0 && e.op == TraceOp::RmaPut)
        .unwrap();
    evs[put].offset = 16;
    let v = check(&Trace::from_events(evs));
    assert_eq!(
        v.iter().map(|v| v.kind).collect::<Vec<_>>(),
        vec![ViolationKind::ConcurrentOverlappingPuts]
    );
    assert!(v[0].message.contains("[16, 48)"), "{}", v[0].message);
}

#[test]
fn ordered_overlapping_puts_are_fine() {
    // Same bytes rewritten two rounds later (slot reuse) is the normal
    // pipeline pattern: fences order the rounds, so no race.
    let mut evs = good_events();
    for e in &mut evs {
        if e.round == 1 && e.op == TraceOp::RmaPut {
            e.offset -= 64; // pretend a single-buffer window
        }
    }
    // The refill check now fires (round 1 reuses round 0's slot without
    // parity distance 2) — but the *overlap* check must stay silent.
    let v = check(&Trace::from_events(evs));
    assert!(
        !v.iter().any(|v| v.kind == ViolationKind::ConcurrentOverlappingPuts),
        "{v:?}"
    );
}

#[test]
fn refill_before_flush_is_caught_in_sim_traces() {
    // Fence-less (simulator-style) trace: the round-2 transfer finishes
    // at t=50, but the flush of round 0 — whose buffer round 2 reuses —
    // only completes at t=100.
    let evs = vec![
        ev(10, 0, 0, TraceOp::RmaPut, 64, NO_OFFSET),
        ev(100, 0, 0, TraceOp::Flush, 64, 0),
        ev(50, 0, 2, TraceOp::RmaPut, 64, NO_OFFSET),
        ev(120, 0, 2, TraceOp::Flush, 64, 128),
    ];
    let v = check(&Trace::from_events(evs));
    assert_eq!(
        v.iter().map(|v| v.kind).collect::<Vec<_>>(),
        vec![ViolationKind::RefillBeforeFlush]
    );
    assert!(v[0].message.contains("round 2"), "{}", v[0].message);
}

#[test]
fn pipelined_sim_trace_passes() {
    // Correct pipeline overlap: round 1 fills while round 0 flushes
    // (allowed — different buffer), round 2 fills only after flush 0.
    let evs = vec![
        ev(10, 0, 0, TraceOp::RmaPut, 64, NO_OFFSET),
        ev(20, 0, 1, TraceOp::RmaPut, 64, NO_OFFSET),
        ev(30, 0, 0, TraceOp::Flush, 64, 0),
        ev(40, 0, 2, TraceOp::RmaPut, 64, NO_OFFSET),
        ev(50, 0, 1, TraceOp::Flush, 64, 64),
        ev(60, 0, 2, TraceOp::Flush, 64, 128),
    ];
    assert_eq!(kinds(&Trace::from_events(evs)), vec![]);
}

#[test]
fn flush_outside_epoch_is_caught() {
    let mut evs = good_events();
    // The round-0 flush completes before the round-0 close fence: the
    // aggregator flushed a buffer whose epoch was still open.
    let fl = evs
        .iter()
        .position(|e| e.op == TraceOp::Flush && e.round == 0)
        .unwrap();
    evs[fl].t_ns = 15;
    let v = check(&Trace::from_events(evs));
    assert_eq!(
        v.iter().map(|v| v.kind).collect::<Vec<_>>(),
        vec![ViolationKind::FlushOutsideEpoch]
    );
}

#[test]
fn refill_before_flush_via_hb_is_caught() {
    // Thread-style fenced trace where the flush of round 0 is recorded
    // *after* the release fence it should precede (e.g. an I/O worker
    // that signals completion before recording): rounds 0 and 2 share a
    // buffer slot but no happens-before edge orders flush 0 before the
    // round-2 refill.
    let mut evs = good_events();
    // Re-label round 1 as round 2 (slot parity matches round 0) and
    // delay the round-0 flush past every fence.
    for e in &mut evs {
        if e.round == 1 {
            e.round = 2;
            if e.op == TraceOp::RmaPut {
                e.offset -= 64; // back into slot 0
            }
            if e.op == TraceOp::Flush {
                e.offset = 128;
            }
        }
    }
    let fl = evs
        .iter()
        .position(|e| e.op == TraceOp::Flush && e.round == 0)
        .unwrap();
    evs[fl].t_ns = 95; // after the final fence at t=80
    let v = check(&Trace::from_events(evs));
    // The late flush is both outside its epoch window and unordered
    // against the refill; the put epoch check also fires because the
    // round jump breaks the fence schedule. What matters: the refill
    // race is caught.
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::RefillBeforeFlush),
        "{v:?}"
    );
}

#[test]
fn collective_order_mismatch_is_caught() {
    let mut evs = good_events();
    // Rank 1 drops its final release fence: the partition's ranks no
    // longer agree on the collective sequence.
    let last = evs
        .iter()
        .rposition(|e| e.rank == 1 && e.op == TraceOp::Fence)
        .unwrap();
    evs.remove(last);
    let v = check(&Trace::from_events(evs));
    assert_eq!(
        v.iter().map(|v| v.kind).collect::<Vec<_>>(),
        vec![ViolationKind::CollectiveOrderMismatch]
    );
    assert!(v[0].message.contains("3 fences"), "{}", v[0].message);
}

#[test]
fn collective_cycle_names_the_deadlocked_ranks() {
    // Rank 0 fences partition 0 then 1; rank 1 fences 1 then 0. Classic
    // lock-order inversion over collectives.
    let mk = |t, rank, partition| TraceEvent {
        t_ns: t,
        rank,
        partition,
        round: 0,
        phase: Phase::Sync,
        op: TraceOp::Fence,
        bytes: 0,
        offset: NO_OFFSET,
        peer: NO_PEER,
        coalesced: 0,
    };
    let evs = vec![mk(10, 0, 0), mk(20, 0, 1), mk(10, 1, 1), mk(20, 1, 0)];
    let v = check(&Trace::from_events(evs));
    assert_eq!(
        v.iter().map(|v| v.kind).collect::<Vec<_>>(),
        vec![ViolationKind::CollectiveCycle]
    );
    assert!(v[0].message.contains("rank 0"), "{}", v[0].message);
    assert!(v[0].message.contains("rank 1"), "{}", v[0].message);
    assert!(v[0].message.contains("cycle over ranks [0, 1]"), "{}", v[0].message);
}

#[test]
fn conflicting_elections_are_caught() {
    let mk = |rank, winner| TraceEvent {
        t_ns: 5,
        rank,
        partition: 0,
        round: 0,
        phase: Phase::Aggregation,
        op: TraceOp::Elect,
        bytes: 64,
        offset: NO_OFFSET,
        peer: winner,
        coalesced: 0,
    };
    let v = check(&Trace::from_events(vec![mk(0, 0), mk(1, 1)]));
    assert_eq!(
        v.iter().map(|v| v.kind).collect::<Vec<_>>(),
        vec![ViolationKind::ConflictingElections]
    );
}

/// A correct crash-recovery execution on partition 0: rank 0 (the
/// elected aggregator) crashes at round 0 after the close fence; rank 1
/// is re-elected, round 0 is replayed into the fresh window, and round 1
/// proceeds through the standby. Fence schedule per rank:
/// close(r0)=#0, replay-close(r0)=#1, release(r0)=#2, close(r1)=#3,
/// release(r1)=#4 — so post-recovery epochs are deltas from base
/// (1 fence seen at Reelect, crash round 0).
fn recovery_events() -> Vec<TraceEvent> {
    let mk = |t: u64, rank: usize, round: u32, op: TraceOp, bytes: u64, offset: u64, peer| {
        TraceEvent {
            t_ns: t,
            rank,
            partition: 0,
            round,
            phase: match op {
                TraceOp::RmaPut | TraceOp::Elect => Phase::Aggregation,
                TraceOp::Flush | TraceOp::Retry => Phase::Io,
                _ => Phase::Sync,
            },
            op,
            bytes,
            offset,
            peer,
            coalesced: 0,
        }
    };
    vec![
        mk(5, 0, 0, TraceOp::Elect, 128, NO_OFFSET, 0),
        // round 0 fill into slot 0 of the doomed window
        mk(10, 0, 0, TraceOp::RmaPut, 32, 0, 0),
        mk(11, 1, 0, TraceOp::RmaPut, 32, 32, 0),
        mk(20, 0, 0, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
        mk(20, 1, 0, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
        // crash detected; standby rank 1 takes over, both lanes mark it
        mk(25, 0, 0, TraceOp::Crash, 0, NO_OFFSET, 0),
        mk(26, 0, 0, TraceOp::Reelect, 0, NO_OFFSET, 1),
        mk(26, 1, 0, TraceOp::Reelect, 0, NO_OFFSET, 1),
        // replay of round 0 into slot 0 of the fresh window
        mk(30, 0, 0, TraceOp::RmaPut, 32, 0, 1),
        mk(31, 1, 0, TraceOp::RmaPut, 32, 32, 1),
        mk(40, 0, 0, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
        mk(40, 1, 0, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
        // the standby retries once, then the flush lands
        mk(45, 1, 0, TraceOp::Retry, 64, 0, NO_PEER),
        mk(50, 1, 0, TraceOp::Flush, 64, 0, NO_PEER),
        mk(60, 0, 0, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
        mk(60, 1, 0, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
        // round 1 through the standby, slot 1
        mk(70, 0, 1, TraceOp::RmaPut, 32, 64, 1),
        mk(71, 1, 1, TraceOp::RmaPut, 32, 96, 1),
        mk(80, 0, 1, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
        mk(80, 1, 1, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
        mk(90, 1, 1, TraceOp::Flush, 64, 64, NO_PEER),
        mk(95, 0, 1, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
        mk(95, 1, 1, TraceOp::Fence, 0, NO_OFFSET, NO_PEER),
    ]
}

#[test]
fn crash_recovery_trace_passes() {
    assert_eq!(kinds(&Trace::from_events(recovery_events())), vec![]);
}

#[test]
fn replayed_put_outside_recovery_epoch_is_caught() {
    // Relabel rank 1's replayed put as round 1: in the recovery epoch it
    // would need base + 2 = 3 fences passed, but it runs with 1.
    let mut evs = recovery_events();
    let i = evs
        .iter()
        .position(|e| e.op == TraceOp::RmaPut && e.t_ns == 31)
        .unwrap();
    evs[i].round = 1;
    let v = check(&Trace::from_events(evs));
    assert!(v.iter().any(|v| v.kind == ViolationKind::PutOutsideEpoch), "{v:?}");
}

#[test]
fn unresolved_retry_is_caught() {
    // Drop the flush the retry was supposed to resolve into.
    let mut evs = recovery_events();
    let i = evs
        .iter()
        .position(|e| e.op == TraceOp::Flush && e.offset == 0)
        .unwrap();
    evs.remove(i);
    let v = check(&Trace::from_events(evs));
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::RetryWithoutFlush),
        "{v:?}"
    );
    assert_eq!(ViolationKind::RetryWithoutFlush.code(), "retry-without-flush");
}

#[test]
fn split_brain_reelection_is_caught() {
    // Rank 0 thinks the standby is rank 1; rank 1 thinks it is rank 0.
    let mut evs = recovery_events();
    let i = evs
        .iter()
        .position(|e| e.op == TraceOp::Reelect && e.rank == 1)
        .unwrap();
    evs[i].peer = 0;
    let v = check(&Trace::from_events(evs));
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::ConflictingElections),
        "{v:?}"
    );
}

#[test]
fn violations_render_with_their_code() {
    let evs = vec![
        ev(10, 0, 0, TraceOp::RmaPut, 64, NO_OFFSET),
        ev(100, 0, 0, TraceOp::Flush, 64, 0),
        ev(50, 0, 2, TraceOp::RmaPut, 64, NO_OFFSET),
    ];
    let v = check(&Trace::from_events(evs));
    let rendered = format!("{}", v[0]);
    assert!(rendered.starts_with("[refill-before-flush] "), "{rendered}");
}
