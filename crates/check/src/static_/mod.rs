//! Schedule-conformance bridge: prove a dynamic trace is a
//! linearization of the statically derived schedule.
//!
//! [`tapioca::analyze::derive_symbolic`] predicts, from `(config,
//! topology, decomposition)` alone, every event either executor may
//! emit. This module closes the loop in both directions:
//!
//! * **dynamic ⊆ static** — every trace event must map to (and
//!   consume) a predicted event; anything left over is an
//!   [`UnmappedDynamicEvent`](StaticViolation::UnmappedDynamicEvent);
//! * **static discharged** — every predicted event on a live path must
//!   be observed; leftovers are
//!   [`UndischargedStaticEvent`](StaticViolation::UndischargedStaticEvent)s;
//! * **order** — per-lane event orders must be consistent with the
//!   static collective order (fence label sequences, round
//!   monotonicity, partition visit order), else an
//!   [`OrderViolation`](StaticViolation::OrderViolation).
//!
//! The two executors emit at different granularities, so the bridge
//! detects the producer and applies the matching refinement map:
//! thread-mode traces carry per-member puts with window offsets and
//! fence/retry/degrade events (matched against the schedule's
//! wire-level view, so coalesced runs expect one merged put on the
//! leader's lane); simulator traces carry per-(round,
//! source-node) transfer batches on the aggregator's lane and execute
//! degraded rounds normally. What both must agree on — elections,
//! crash/re-election points, flush extents, byte volumes, and the
//! round structure — is checked identically.

use std::collections::BTreeMap;

use tapioca::analyze::{StaticViolation, SymbolicPartition, SymbolicSchedule};
use tapioca_pfs::AccessMode;
use tapioca_topology::Rank;
use tapioca_trace::{Trace, TraceEvent, TraceOp, NO_OFFSET, NO_PEER};

/// Remaining expected puts for one partition, keyed by (round, rank);
/// each entry is (window_offset, bytes, peer, coalesced). The entries
/// come from the schedule's *wire-level* view, so with coalescing on a
/// node leader's lane expects one merged put (`coalesced >= 2`) in
/// place of its run's per-chunk puts.
type PutMap = BTreeMap<(u32, Rank), Vec<(u64, u64, Rank, u32)>>;

/// Which executor produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Thread-mode runtime: per-member puts, fences, retries, degrade.
    Thread,
    /// Flow-level simulator: batched transfers on the aggregator lane.
    Sim,
}

/// Guess the producing executor from trace structure: only thread mode
/// records fences, retries, degrades, or window offsets on puts.
pub fn detect_executor(trace: &Trace) -> Executor {
    let threadish = trace.events().iter().any(|e| {
        matches!(e.op, TraceOp::Fence | TraceOp::Retry | TraceOp::Degrade)
            || (e.op == TraceOp::RmaPut && e.offset != NO_OFFSET)
    });
    if threadish { Executor::Thread } else { Executor::Sim }
}

/// Check a dynamic trace against the static schedule, auto-detecting
/// the producing executor. Empty result = the trace is a linearization
/// of the symbolic schedule.
pub fn conformance(sym: &SymbolicSchedule, trace: &Trace) -> Vec<StaticViolation> {
    conformance_as(sym, trace, detect_executor(trace))
}

/// Check a dynamic trace against the static schedule for a known
/// executor.
pub fn conformance_as(
    sym: &SymbolicSchedule,
    trace: &Trace,
    executor: Executor,
) -> Vec<StaticViolation> {
    let mut out = Vec::new();
    if sym.mode != AccessMode::Write {
        // Read collectives only assert partition mapping: the write
        // pipeline's event vocabulary (puts/flushes/fences) is what the
        // symbolic model predicts in detail.
        for e in trace.events() {
            if sym.partition(e.partition).is_none() {
                out.push(unmapped(e, "partition not in static schedule"));
            }
        }
        return out;
    }
    match executor {
        Executor::Thread => conform_thread(sym, trace, &mut out),
        Executor::Sim => conform_sim(sym, trace, &mut out),
    }
    out
}

fn unmapped(e: &TraceEvent, why: &str) -> StaticViolation {
    StaticViolation::UnmappedDynamicEvent {
        rank: e.rank,
        detail: format!(
            "{:?} partition {} round {} bytes {} offset {} peer {}: {why}",
            e.op,
            e.partition,
            e.round,
            e.bytes,
            if e.offset == NO_OFFSET { -1i64 } else { e.offset as i64 },
            if e.peer == NO_PEER { -1i64 } else { e.peer as i64 },
        ),
    }
}

/// Expected per-partition state for the thread-mode refinement map.
struct ThreadPart {
    index: u32,
    members: Vec<Rank>,
    lowest: Option<Rank>,
    aggregator: Option<Rank>,
    crash: Option<(u32, Rank, Rank)>, // (round, old, standby)
    /// First degraded round (`u32::MAX` when none): no puts, fences, or
    /// flushes are predicted at or after it.
    dr: u32,
    nrounds: u32,
    total_bytes: u64,
    degrade_bytes: u64,
    /// Remaining expected puts, keyed by (round, rank).
    puts: PutMap,
    /// Remaining expected flush segments, keyed by round.
    flushes: BTreeMap<u32, Vec<(u64, u64)>>,
    /// Retry budget per (round, file_offset, len): (allowed, seen).
    retries: BTreeMap<(u32, u64, u64), (u32, u32)>,
    elect_seen: bool,
    crash_seen: bool,
    reelects_seen: Vec<Rank>,
    degrade_seen: bool,
    /// Observed fence round labels per member lane.
    fences: BTreeMap<Rank, Vec<u32>>,
    /// Last put round observed per member lane (monotonicity).
    last_put_round: BTreeMap<Rank, u32>,
}

impl ThreadPart {
    fn new(p: &SymbolicPartition) -> Self {
        let dr = p.degrade_round.unwrap_or(u32::MAX);
        let crash = p.crash.map(|c| (c.round, c.old, c.standby));
        let mut puts: PutMap = BTreeMap::new();
        let mut flushes: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
        let mut retries = BTreeMap::new();
        for round in &p.rounds {
            if round.round >= dr {
                break;
            }
            for put in &round.wire_puts {
                puts.entry((round.round, put.rank)).or_default().push((
                    put.window_offset,
                    put.bytes,
                    put.peer,
                    put.coalesced,
                ));
            }
            for seg in &round.flushes {
                flushes.entry(round.round).or_default().push((seg.file_offset, seg.len));
                if seg.fail_attempts > 0 {
                    retries.insert(
                        (round.round, seg.file_offset, seg.len),
                        (seg.fail_attempts, 0),
                    );
                }
            }
        }
        let degrade_bytes = p
            .rounds
            .iter()
            .filter(|r| r.round >= dr)
            .map(|r| r.bytes)
            .sum();
        ThreadPart {
            index: p.partition,
            members: p.members.clone(),
            lowest: p.lowest,
            aggregator: p.aggregator,
            crash,
            dr,
            nrounds: p.rounds.len() as u32,
            total_bytes: p.total_bytes,
            degrade_bytes,
            puts,
            flushes,
            retries,
            elect_seen: false,
            crash_seen: false,
            reelects_seen: Vec::new(),
            degrade_seen: false,
            fences: BTreeMap::new(),
            last_put_round: BTreeMap::new(),
        }
    }

    /// Lane the flushes/retries of `round` are expected on.
    fn flush_rank(&self, round: u32) -> Option<Rank> {
        match self.crash {
            Some((cr, _, standby)) if round >= cr => Some(standby),
            _ => self.aggregator,
        }
    }

    /// Fence labels one member lane must produce, in order: two per
    /// round, three in the crash round, stopping at the degrade round.
    fn expected_fences(&self) -> Vec<u32> {
        let mut seq = Vec::new();
        let end = self.nrounds.min(self.dr);
        for r in 0..end {
            let n = match self.crash {
                Some((cr, _, _)) if r == cr => 3,
                _ => 2,
            };
            for _ in 0..n {
                seq.push(r);
            }
        }
        seq
    }
}

fn conform_thread(sym: &SymbolicSchedule, trace: &Trace, out: &mut Vec<StaticViolation>) {
    let mut parts: BTreeMap<u32, ThreadPart> = sym
        .groups
        .iter()
        .flat_map(|g| &g.partitions)
        .map(|p| (p.partition, ThreadPart::new(p)))
        .collect();
    // Per rank: order partitions first appear in (visit-order check).
    let mut first_seen: BTreeMap<Rank, Vec<u32>> = BTreeMap::new();

    for e in trace.events() {
        let Some(part) = parts.get_mut(&e.partition) else {
            out.push(unmapped(e, "partition not in static schedule"));
            continue;
        };
        if matches!(e.op, TraceOp::RmaPut | TraceOp::Fence) {
            let seen = first_seen.entry(e.rank).or_default();
            if !seen.contains(&e.partition) {
                seen.push(e.partition);
            }
        }
        match e.op {
            TraceOp::Elect => {
                if part.elect_seen {
                    out.push(unmapped(e, "duplicate election"));
                } else if part.lowest != Some(e.rank)
                    || part.aggregator != Some(e.peer)
                    || e.bytes != part.total_bytes
                {
                    out.push(unmapped(e, "election disagrees with static winner"));
                } else {
                    part.elect_seen = true;
                }
            }
            TraceOp::RmaPut => {
                if e.round >= part.dr {
                    out.push(unmapped(e, "put at or after the degrade round"));
                    continue;
                }
                let last = part.last_put_round.entry(e.rank).or_insert(0);
                if e.round < *last {
                    out.push(StaticViolation::OrderViolation {
                        rank: e.rank,
                        detail: format!(
                            "partition {}: put round went backwards ({} after {})",
                            e.partition, e.round, last
                        ),
                    });
                }
                *last = (*last).max(e.round);
                let entry = part.puts.get_mut(&(e.round, e.rank));
                let found = entry.and_then(|v| {
                    v.iter()
                        .position(|&(off, bytes, peer, coalesced)| {
                            off == e.offset
                                && bytes == e.bytes
                                && peer == e.peer
                                && coalesced == e.coalesced
                        })
                        .map(|i| v.swap_remove(i))
                });
                if found.is_none() {
                    out.push(unmapped(e, "no matching predicted put"));
                }
            }
            TraceOp::Flush => {
                if e.round >= part.dr {
                    out.push(unmapped(e, "flush at or after the degrade round"));
                    continue;
                }
                if part.flush_rank(e.round) != Some(e.rank) {
                    out.push(unmapped(e, "flush on an unexpected lane"));
                    continue;
                }
                let entry = part.flushes.get_mut(&e.round);
                let found = entry.and_then(|v| {
                    v.iter()
                        .position(|&(off, len)| off == e.offset && len == e.bytes)
                        .map(|i| v.swap_remove(i))
                });
                if found.is_none() {
                    out.push(unmapped(e, "no matching predicted flush segment"));
                }
            }
            TraceOp::Fence => {
                if !part.members.contains(&e.rank) {
                    out.push(unmapped(e, "fence from a non-member"));
                } else {
                    part.fences.entry(e.rank).or_default().push(e.round);
                }
            }
            TraceOp::Crash => match part.crash {
                Some((cr, old, _))
                    if e.round == cr && e.peer == old && Some(e.rank) == part.lowest =>
                {
                    part.crash_seen = true;
                }
                _ => out.push(unmapped(e, "crash not predicted here")),
            },
            TraceOp::Reelect => match part.crash {
                Some((cr, _, standby))
                    if e.round == cr
                        && e.peer == standby
                        && part.members.contains(&e.rank)
                        && !part.reelects_seen.contains(&e.rank) =>
                {
                    part.reelects_seen.push(e.rank);
                }
                _ => out.push(unmapped(e, "re-election not predicted here")),
            },
            TraceOp::Retry => {
                if e.round >= part.dr || part.flush_rank(e.round) != Some(e.rank) {
                    out.push(unmapped(e, "retry not predicted here"));
                    continue;
                }
                match part.retries.get_mut(&(e.round, e.offset, e.bytes)) {
                    Some((allowed, seen)) if *seen < *allowed => *seen += 1,
                    _ => out.push(unmapped(e, "retry exceeds the injected fault budget")),
                }
            }
            TraceOp::Degrade => {
                if part.dr == u32::MAX
                    || e.round != part.dr
                    || Some(e.rank) != part.lowest
                    || e.bytes != part.degrade_bytes
                {
                    out.push(unmapped(e, "degrade disagrees with the static degrade point"));
                } else if part.degrade_seen {
                    out.push(unmapped(e, "duplicate degrade"));
                } else {
                    part.degrade_seen = true;
                }
            }
        }
    }

    // Visit order: the order a rank first touches partitions must be a
    // subsequence of its static visit order.
    for group in &sym.groups {
        for (rank, visits) in &group.visit_order {
            let Some(observed) = first_seen.get(rank) else { continue };
            let in_group: Vec<u32> = observed
                .iter()
                .copied()
                .filter(|p| visits.contains(p))
                .collect();
            let mut cursor = visits.iter();
            for p in &in_group {
                if !cursor.any(|v| v == p) {
                    out.push(StaticViolation::OrderViolation {
                        rank: *rank,
                        detail: format!(
                            "partition {p} visited out of static collective order \
                             (expected order {visits:?}, observed {in_group:?})"
                        ),
                    });
                    break;
                }
            }
        }
    }

    // Discharge: everything predicted on a live path must be observed.
    for part in parts.values() {
        if part.members.is_empty() {
            continue;
        }
        if !part.elect_seen {
            out.push(undischarged(part.index, "election never observed"));
        }
        if let Some((cr, _, _)) = part.crash {
            if !part.crash_seen {
                out.push(undischarged(part.index, &format!("crash at round {cr} never observed")));
            }
            for m in &part.members {
                if !part.reelects_seen.contains(m) {
                    out.push(undischarged(
                        part.index,
                        &format!("member {m} never acknowledged the re-election"),
                    ));
                }
            }
        }
        if part.dr < part.nrounds && !part.degrade_seen {
            out.push(undischarged(
                part.index,
                &format!("degrade at round {} never observed", part.dr),
            ));
        }
        for ((round, rank), v) in &part.puts {
            if !v.is_empty() {
                out.push(undischarged(
                    part.index,
                    &format!("{} put(s) of rank {rank} round {round} never observed", v.len()),
                ));
            }
        }
        for (round, v) in &part.flushes {
            if !v.is_empty() {
                out.push(undischarged(
                    part.index,
                    &format!("{} flush segment(s) of round {round} never observed", v.len()),
                ));
            }
        }
        for ((round, off, len), (allowed, seen)) in &part.retries {
            if seen != allowed {
                out.push(undischarged(
                    part.index,
                    &format!(
                        "segment @{off}+{len} round {round}: {seen} of {allowed} injected \
                         retries observed"
                    ),
                ));
            }
        }
        let expected = part.expected_fences();
        for m in &part.members {
            let got = part.fences.get(m).cloned().unwrap_or_default();
            if got != expected {
                out.push(StaticViolation::OrderViolation {
                    rank: *m,
                    detail: format!(
                        "partition {}: fence labels {got:?} differ from static \
                         sequence {expected:?}",
                        part.index
                    ),
                });
            }
        }
    }
}

fn undischarged(partition: u32, detail: &str) -> StaticViolation {
    StaticViolation::UndischargedStaticEvent { partition, detail: detail.into() }
}

/// Expected per-partition state for the simulator refinement map: the
/// sim batches transfers per (round, source node) on the aggregator's
/// lane, so puts are matched by byte volume per round, not per member.
struct SimPart {
    index: u32,
    lowest: Option<Rank>,
    aggregator: Option<Rank>,
    crash: Option<(u32, Rank, Rank)>,
    total_bytes: u64,
    /// Expected transfer bytes per round (crash round counts the doomed
    /// fill and the replay: the plan moves the bytes twice).
    put_bytes: BTreeMap<u32, u64>,
    seen_put_bytes: BTreeMap<u32, u64>,
    /// Remaining expected flush segments per round (the sim executes
    /// degraded rounds too — lock penalties stop, ops do not).
    flushes: BTreeMap<u32, Vec<(u64, u64)>>,
    elect_seen: bool,
    crash_seen: bool,
    reelect_seen: bool,
    max_put_t: BTreeMap<u32, u64>,
    min_flush_t: BTreeMap<u32, u64>,
    last_put_round: u32,
    last_flush_round: u32,
}

impl SimPart {
    fn new(p: &SymbolicPartition) -> Self {
        let crash = p.crash.map(|c| (c.round, c.old, c.standby));
        let mut put_bytes = BTreeMap::new();
        let mut flushes: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
        for round in &p.rounds {
            let factor = match crash {
                Some((cr, _, _)) if round.round == cr => 2,
                _ => 1,
            };
            put_bytes.insert(round.round, round.bytes * factor);
            flushes.insert(
                round.round,
                round.flushes.iter().map(|s| (s.file_offset, s.len)).collect(),
            );
        }
        SimPart {
            index: p.partition,
            lowest: p.lowest,
            aggregator: p.aggregator,
            crash,
            total_bytes: p.total_bytes,
            put_bytes,
            seen_put_bytes: BTreeMap::new(),
            flushes,
            elect_seen: false,
            crash_seen: false,
            reelect_seen: false,
            max_put_t: BTreeMap::new(),
            min_flush_t: BTreeMap::new(),
            last_put_round: 0,
            last_flush_round: 0,
        }
    }
}

fn conform_sim(sym: &SymbolicSchedule, trace: &Trace, out: &mut Vec<StaticViolation>) {
    let mut parts: BTreeMap<u32, SimPart> = sym
        .groups
        .iter()
        .flat_map(|g| &g.partitions)
        .map(|p| (p.partition, SimPart::new(p)))
        .collect();

    for e in trace.events() {
        let Some(part) = parts.get_mut(&e.partition) else {
            out.push(unmapped(e, "partition not in static schedule"));
            continue;
        };
        match e.op {
            TraceOp::Elect => {
                if part.elect_seen {
                    out.push(unmapped(e, "duplicate election"));
                } else if part.lowest != Some(e.rank)
                    || part.aggregator != Some(e.peer)
                    || e.bytes != part.total_bytes
                {
                    out.push(unmapped(e, "election disagrees with static winner"));
                } else {
                    part.elect_seen = true;
                }
            }
            TraceOp::Crash => match part.crash {
                Some((cr, old, _))
                    if e.round == cr && e.peer == old && Some(e.rank) == part.lowest =>
                {
                    part.crash_seen = true;
                }
                _ => out.push(unmapped(e, "crash not predicted here")),
            },
            TraceOp::Reelect => match part.crash {
                Some((cr, _, standby))
                    if e.round == cr
                        && e.peer == standby
                        && Some(e.rank) == part.lowest
                        && !part.reelect_seen =>
                {
                    part.reelect_seen = true;
                }
                _ => out.push(unmapped(e, "re-election not predicted here")),
            },
            TraceOp::RmaPut => {
                if Some(e.rank) != part.aggregator
                    || e.peer != e.rank
                    || e.offset != NO_OFFSET
                {
                    out.push(unmapped(e, "sim transfers carry the aggregator lane"));
                    continue;
                }
                if !part.put_bytes.contains_key(&e.round) {
                    out.push(unmapped(e, "transfer in a round the schedule lacks"));
                    continue;
                }
                if e.round < part.last_put_round {
                    out.push(StaticViolation::OrderViolation {
                        rank: e.rank,
                        detail: format!(
                            "partition {}: transfer round went backwards ({} after {})",
                            e.partition, e.round, part.last_put_round
                        ),
                    });
                }
                part.last_put_round = part.last_put_round.max(e.round);
                *part.seen_put_bytes.entry(e.round).or_insert(0) += e.bytes;
                let t = part.max_put_t.entry(e.round).or_insert(0);
                *t = (*t).max(e.t_ns);
            }
            TraceOp::Flush => {
                if part.flush_rank_ok(e.rank) {
                    if e.round < part.last_flush_round {
                        out.push(StaticViolation::OrderViolation {
                            rank: e.rank,
                            detail: format!(
                                "partition {}: flush round went backwards ({} after {})",
                                e.partition, e.round, part.last_flush_round
                            ),
                        });
                    }
                    part.last_flush_round = part.last_flush_round.max(e.round);
                    let entry = part.flushes.get_mut(&e.round);
                    let found = entry.and_then(|v| {
                        v.iter()
                            .position(|&(off, len)| off == e.offset && len == e.bytes)
                            .map(|i| v.swap_remove(i))
                    });
                    if found.is_none() {
                        out.push(unmapped(e, "no matching predicted flush segment"));
                    }
                    let t = part.min_flush_t.entry(e.round).or_insert(u64::MAX);
                    *t = (*t).min(e.t_ns);
                } else {
                    out.push(unmapped(e, "flush on an unexpected lane"));
                }
            }
            TraceOp::Fence | TraceOp::Retry | TraceOp::Degrade => {
                out.push(unmapped(e, "the simulator never emits this event"));
            }
        }
    }

    for part in parts.values() {
        if part.put_bytes.is_empty() {
            continue;
        }
        if !part.elect_seen {
            out.push(undischarged(part.index, "election never observed"));
        }
        if let Some((cr, _, _)) = part.crash {
            if !part.crash_seen || !part.reelect_seen {
                out.push(undischarged(
                    part.index,
                    &format!("crash/re-election at round {cr} never observed"),
                ));
            }
        }
        for (round, expected) in &part.put_bytes {
            let seen = part.seen_put_bytes.get(round).copied().unwrap_or(0);
            if seen != *expected {
                out.push(undischarged(
                    part.index,
                    &format!("round {round}: transfers moved {seen} of {expected} bytes"),
                ));
            }
        }
        for (round, v) in &part.flushes {
            if !v.is_empty() {
                out.push(undischarged(
                    part.index,
                    &format!("{} flush segment(s) of round {round} never observed", v.len()),
                ));
            }
        }
        // Dependency order: a round's flush completes no earlier than
        // the last transfer that filled its window.
        for (round, flush_t) in &part.min_flush_t {
            if let Some(put_t) = part.max_put_t.get(round) {
                if flush_t < put_t {
                    out.push(StaticViolation::OrderViolation {
                        rank: part.aggregator.unwrap_or(0),
                        detail: format!(
                            "partition {} round {round}: flush at {flush_t}ns precedes \
                             the last window fill at {put_t}ns",
                            part.index
                        ),
                    });
                }
            }
        }
    }
}

impl SimPart {
    /// Sim flushes are recorded on the original aggregator's lane; the
    /// plan's post-crash flushes originate from the standby node, so
    /// accept either.
    fn flush_rank_ok(&self, rank: Rank) -> bool {
        Some(rank) == self.aggregator
            || self.crash.is_some_and(|(_, _, standby)| rank == standby)
    }
}
