//! Vector-clock happens-before engine.
//!
//! Replays a [`Trace`] as a scheduler would: each rank's lane is a
//! program-order queue; non-fence events execute freely; a fence is a
//! barrier that releases only when every participant of the same
//! `(partition, ordinal)` collective has arrived. Executing an event
//! ticks the rank's own clock component; executing a fence first joins
//! (elementwise max) the clocks of all participants, so the fence
//! becomes a happens-before edge from everything before it on any
//! participant to everything after it on any participant — exactly
//! `MPI_Win_fence` semantics.
//!
//! The replay doubles as the epoch checker (invariant 1): when a put or
//! flush executes, the number of fences its rank has passed in that
//! partition pins which epoch it ran in, and the pipeline's fence
//! schedule (close of round `r` is fence `2r`, release is `2r + 1`)
//! says which epochs are legal. A `Reelect` event resets the schedule's
//! origin — recovery opens a fresh window, so the crash round is
//! replayed one fence later than the plain schedule predicts; the
//! checker records `(fences seen, crash round)` at the reelection and
//! measures every later epoch as a delta from that base, without
//! resetting the fence *ordinals* used for collective matching. And it
//! doubles as the deadlock detector
//! (invariant 5): if no rank can make progress but events remain, the
//! blocked fences form a wait-for graph whose cycle is reported with
//! the ranks on it.

use tapioca_trace::{Trace, TraceOp};

use crate::{Violation, ViolationKind};

/// The result of replaying a trace: per-event vector clocks (for puts
/// and flushes) plus which partitions carry fences at all.
#[derive(Debug)]
pub struct Execution {
    /// Vector clock of each event, indexed like `trace.events()`;
    /// `None` for events that never executed (deadlock) or need no
    /// clock (fences, elections).
    clocks: Vec<Option<Vec<u64>>>,
    /// Dense rank index owning each event.
    owner: Vec<usize>,
    /// Partitions that recorded at least one fence.
    fenced: std::collections::BTreeSet<u32>,
}

impl Execution {
    /// True iff event `a` happens-before event `b` (both indices into
    /// the replayed trace's event slice). Events without clocks are
    /// never ordered.
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        let (Some(ca), Some(cb)) = (&self.clocks[a], &self.clocks[b]) else {
            return false;
        };
        let i = self.owner[a];
        ca[i] <= cb[i]
    }

    /// Whether partition `p` recorded any fence (thread-mode trace) or
    /// none (simulator trace).
    pub fn partition_is_fenced(&self, p: u32) -> bool {
        self.fenced.contains(&p)
    }
}

impl Execution {
    /// Replay `trace`, appending epoch and deadlock violations to `out`.
    pub fn replay(trace: &Trace, out: &mut Vec<Violation>) -> Execution {
        Replayer::new(trace).run(out)
    }
}

struct Replayer<'t> {
    events: &'t [tapioca_trace::TraceEvent],
    /// Global rank -> dense index.
    rank_idx: std::collections::BTreeMap<usize, usize>,
    /// Per dense rank: indices into `events`, in lane (program) order.
    lanes: Vec<Vec<usize>>,
    /// Per dense rank: next unexecuted position in its lane.
    cursor: Vec<usize>,
    /// Per dense rank: current vector clock.
    clock: Vec<Vec<u64>>,
    /// Per dense rank, per partition: fences executed so far.
    fences_done: Vec<std::collections::BTreeMap<u32, u64>>,
    /// Per dense rank, per partition: the recovery epoch base set by the
    /// last `Reelect` the rank executed — (fences seen at that point,
    /// the crash round being replayed).
    recovery_base: Vec<std::collections::BTreeMap<u32, (u64, u32)>>,
    /// Per partition, per dense rank: total fences in the whole lane
    /// (fixes the participant set of each collective ordinal).
    fence_totals: std::collections::BTreeMap<u32, Vec<u64>>,
    /// Assigned event clocks.
    clocks: Vec<Option<Vec<u64>>>,
    /// Dense owner rank of each event.
    owner: Vec<usize>,
}

impl<'t> Replayer<'t> {
    fn new(trace: &'t Trace) -> Replayer<'t> {
        let events = trace.events();
        let mut rank_idx = std::collections::BTreeMap::new();
        for e in events {
            let n = rank_idx.len();
            rank_idx.entry(e.rank).or_insert(n);
        }
        let n = rank_idx.len();
        let mut lanes = vec![Vec::new(); n];
        let mut owner = vec![0usize; events.len()];
        let mut fence_totals: std::collections::BTreeMap<u32, Vec<u64>> =
            std::collections::BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            let r = rank_idx[&e.rank];
            owner[i] = r;
            lanes[r].push(i);
            if e.op == TraceOp::Fence {
                fence_totals.entry(e.partition).or_insert_with(|| vec![0; n])[r] += 1;
            }
        }
        Replayer {
            events,
            rank_idx,
            lanes,
            cursor: vec![0; n],
            clock: vec![vec![0; n]; n],
            fences_done: vec![std::collections::BTreeMap::new(); n],
            recovery_base: vec![std::collections::BTreeMap::new(); n],
            fence_totals,
            clocks: vec![None; events.len()],
            owner,
        }
    }

    /// The event at rank `r`'s lane head, if any.
    fn head(&self, r: usize) -> Option<usize> {
        self.lanes[r].get(self.cursor[r]).copied()
    }

    /// Participants of collective `(p, k)`: ranks whose lane contains
    /// more than `k` fences in partition `p`.
    fn participants(&self, p: u32, k: u64) -> Vec<usize> {
        self.fence_totals[&p]
            .iter()
            .enumerate()
            .filter(|&(_, &total)| total > k)
            .map(|(r, _)| r)
            .collect()
    }

    /// Whether rank `r` is parked at collective `(p, k)`.
    fn parked_at(&self, r: usize, p: u32, k: u64) -> bool {
        self.head(r).is_some_and(|i| {
            let e = &self.events[i];
            e.op == TraceOp::Fence
                && e.partition == p
                && self.fences_done[r].get(&p).copied().unwrap_or(0) == k
        })
    }

    fn run(mut self, out: &mut Vec<Violation>) -> Execution {
        let n = self.lanes.len();
        loop {
            let mut progressed = false;
            for r in 0..n {
                // Drain everything non-blocking at this rank.
                while let Some(i) = self.head(r) {
                    let e = &self.events[i];
                    if e.op == TraceOp::Fence {
                        if self.try_fence(r, i) {
                            progressed = true;
                            continue;
                        }
                        break;
                    }
                    self.clock[r][r] += 1;
                    if e.op == TraceOp::Reelect {
                        let seen =
                            self.fences_done[r].get(&e.partition).copied().unwrap_or(0);
                        self.recovery_base[r].insert(e.partition, (seen, e.round));
                    }
                    self.check_epoch(r, i, out);
                    if matches!(e.op, TraceOp::RmaPut | TraceOp::Flush | TraceOp::Retry) {
                        self.clocks[i] = Some(self.clock[r].clone());
                    }
                    self.cursor[r] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        if (0..n).any(|r| self.head(r).is_some()) {
            out.push(self.deadlock_witness());
        }
        Execution {
            clocks: self.clocks,
            owner: self.owner,
            fenced: self.fence_totals.keys().copied().collect(),
        }
    }

    /// Attempt to complete the collective that rank `r`'s head fence
    /// belongs to. On success, joins and advances every participant.
    fn try_fence(&mut self, r: usize, i: usize) -> bool {
        let p = self.events[i].partition;
        let k = self.fences_done[r].get(&p).copied().unwrap_or(0);
        let parts = self.participants(p, k);
        debug_assert!(parts.contains(&r));
        if !parts.iter().all(|&v| self.parked_at(v, p, k)) {
            return false;
        }
        // Barrier join: everyone leaves with the elementwise max.
        let n = self.clock.len();
        let mut joined = vec![0u64; n];
        for &v in &parts {
            for (j, c) in joined.iter_mut().zip(&self.clock[v]) {
                *j = (*j).max(*c);
            }
        }
        for &v in &parts {
            self.clock[v] = joined.clone();
            self.clock[v][v] += 1;
            *self.fences_done[v].entry(p).or_insert(0) += 1;
            self.cursor[v] += 1;
        }
        true
    }

    /// Invariant 1: epoch accounting for the put / flush that just
    /// executed, skipped for fence-less (simulator) partitions.
    ///
    /// With the pipeline's fence schedule (close of round `r` is the
    /// rank's fence `2r` in the partition, release is `2r + 1`):
    /// * a put of round `r` runs with exactly `2r` fences passed;
    /// * a flush of round `r` completes with `2r + 1` (right after its
    ///   close fence) up to `2r + 3` (the close of round `r + 1`, where
    ///   the pipelined wait drains it) fences passed.
    ///
    /// After a `Reelect` the schedule restarts from the recovery base:
    /// the crash round `cr` was closed once before the crash was
    /// detected, so its replay (and every later round `r`) is measured
    /// as a delta — puts of round `r` want `base + 2*(r - cr)` fences,
    /// flushes `[base + 2*(r - cr) + 1, base + 2*(r - cr) + 3]`.
    fn check_epoch(&self, r: usize, i: usize, out: &mut Vec<Violation>) {
        let e = &self.events[i];
        let p = e.partition;
        if !self.fence_totals.contains_key(&p) {
            return;
        }
        let seen = self.fences_done[r].get(&p).copied().unwrap_or(0);
        // Events of pre-crash rounds are always executed (and therefore
        // checked) before the rank's Reelect, so a base from a later
        // round never applies to them.
        let (base, base_round) = match self.recovery_base[r].get(&p) {
            Some(&(b, cr)) if e.round >= cr => (b, cr as u64),
            _ => (0, 0),
        };
        match e.op {
            TraceOp::RmaPut => {
                let want = base + 2 * (e.round as u64 - base_round);
                if seen != want {
                    out.push(Violation {
                        kind: ViolationKind::PutOutsideEpoch,
                        message: format!(
                            "partition {p}: rank {} put {} B labelled round {} after \
                             passing {seen} fences — round {}'s epoch is open only \
                             between fences {want} and {}",
                            e.rank,
                            e.bytes,
                            e.round,
                            e.round,
                            want + 1
                        ),
                    });
                }
            }
            TraceOp::Flush => {
                let lo = base + 2 * (e.round as u64 - base_round) + 1;
                let hi = lo + 2;
                if seen < lo || seen > hi {
                    out.push(Violation {
                        kind: ViolationKind::FlushOutsideEpoch,
                        message: format!(
                            "partition {p}: rank {}'s flush of round {} ({} B) completed \
                             after {seen} fences — the pipeline permits it only between \
                             fences {lo} and {hi} (post-close, pre-reuse)",
                            e.rank, e.round, e.bytes
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    /// Extract a deadlock cycle from the stuck state: every blocked
    /// rank's head is a fence (anything else would have executed), so
    /// "waits for a missing participant" edges must close a cycle.
    fn deadlock_witness(&self) -> Violation {
        let n = self.lanes.len();
        let global: Vec<usize> = {
            let mut g = vec![0usize; n];
            for (&rank, &idx) in &self.rank_idx {
                g[idx] = rank;
            }
            g
        };
        // next[r] = (blocking collective, one missing participant)
        let mut next: Vec<Option<(u32, u64, usize)>> = vec![None; n];
        #[allow(clippy::needless_range_loop)] // r also keys head()/fences_done
        for r in 0..n {
            let Some(i) = self.head(r) else { continue };
            let e = &self.events[i];
            if e.op != TraceOp::Fence {
                continue;
            }
            let p = e.partition;
            let k = self.fences_done[r].get(&p).copied().unwrap_or(0);
            if let Some(&v) =
                self.participants(p, k).iter().find(|&&v| !self.parked_at(v, p, k))
            {
                next[r] = Some((p, k, v));
            }
        }
        // Walk the wait-for edges until a node repeats; the tail from
        // that node is the cycle.
        let Some(start) = (0..n).find(|&r| next[r].is_some()) else {
            return Violation {
                kind: ViolationKind::CollectiveCycle,
                message: "trace replay stalled with events remaining, but no blocked \
                          fence was found (truncated trace?)"
                    .into(),
            };
        };
        let mut seen_at = vec![usize::MAX; n];
        let mut path = Vec::new();
        let mut cur = start;
        let cycle_start = loop {
            if seen_at[cur] != usize::MAX {
                break seen_at[cur];
            }
            seen_at[cur] = path.len();
            path.push(cur);
            match next[cur] {
                Some((_, _, v)) => cur = v,
                None => break 0, // defensive: dead end, report the chain
            }
        };
        let cycle = &path[cycle_start..];
        let mut msg = String::from("collective deadlock witness: ");
        for (step, &r) in cycle.iter().enumerate() {
            let (p, k, v) = next[r].expect("every cycle node is blocked");
            if step > 0 {
                msg.push_str("; ");
            }
            msg.push_str(&format!(
                "rank {} blocks at fence #{k} of partition {p} waiting for rank {}",
                global[r], global[v]
            ));
        }
        let mut ranks: Vec<usize> = cycle.iter().map(|&r| global[r]).collect();
        ranks.sort_unstable();
        msg.push_str(&format!(" — cycle over ranks {ranks:?}"));
        Violation { kind: ViolationKind::CollectiveCycle, message: msg }
    }
}
