//! # tapioca-check
//!
//! A happens-before race detector and RMA-epoch protocol checker over
//! [`tapioca_trace::Trace`]s — the pipeline's ordering contract, made
//! executable.
//!
//! The TAPIOCA write pipeline (paper Algorithm 3) is correct only if a
//! handful of ordering invariants hold in every execution:
//!
//! 1. **Epoch discipline** — every RMA put of round `r` happens inside
//!    round `r`'s access epoch: after the release fence of round `r-1`
//!    and before the close fence of round `r`.
//! 2. **Put disjointness** — no two puts that target overlapping byte
//!    ranges of the same aggregation window are concurrent (unordered by
//!    happens-before). MPI leaves overlapping concurrent puts undefined.
//! 3. **Buffer reuse** — a pipeline buffer is refilled (round `r+2` with
//!    double buffering) only after the flush of round `r` completed.
//! 4. **Collective agreement** — all ranks of a partition observe the
//!    partition's collectives (fences) in the same order, with the same
//!    round labels.
//! 5. **Deadlock freedom** — the cross-partition fence ordering is
//!    acyclic; a cycle is reported with a witness naming the ranks and
//!    the collectives they block on.
//! 6. **Recovery discipline** — fault-injected runs keep the contract:
//!    a `Reelect` opens a *recovery epoch* (a fresh window whose fence
//!    schedule restarts at the crash round; the epoch checks measure
//!    deltas from the reelection instead of absolute rounds), every
//!    member of the partition agrees on the standby, and every recorded
//!    `Retry` is eventually resolved by a completed flush of the same
//!    file range.
//!
//! [`check`] verifies all of these on a recorded trace and returns the
//! violations found (empty = clean). Kinds are machine-readable
//! ([`ViolationKind::code`]); messages are human diagnostics.
//!
//! ## How the happens-before relation is built
//!
//! The checker replays the trace through a vector-clock engine
//! ([`hb`]): per-rank lane order gives program-order edges (sound
//! because each lane is appended under a mutex in timestamp order, and
//! the I/O worker records flush completions *before* signalling the
//! handle the aggregator waits on), and each fence is a barrier join
//! over the partition's participants. Two events are concurrent iff
//! neither's clock is ≤ the other's.
//!
//! Simulator traces carry no fence events (the simulator executes a
//! dependency DAG, not synchronization); for such partitions the
//! checker falls back to completion-timestamp ordering for the buffer
//! reuse invariant — sound because simulated completion times respect
//! the plan DAG, which encodes exactly that dependency — and skips the
//! epoch and overlap checks, which are meaningless without epochs.

pub mod hb;
pub mod jsonl;
pub mod static_;

use std::fmt;

use tapioca_trace::{Trace, TraceOp, NO_OFFSET};

pub use jsonl::parse_jsonl;

/// Machine-readable classification of a protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// An RMA put executed outside its round's fence epoch.
    PutOutsideEpoch,
    /// A flush completed outside the window the pipeline allows
    /// (before its round's close fence, or after the release fence
    /// that should have waited for it).
    FlushOutsideEpoch,
    /// Two puts into overlapping bytes of one aggregation window are
    /// unordered by happens-before.
    ConcurrentOverlappingPuts,
    /// A pipeline buffer was refilled before its previous flush
    /// completed.
    RefillBeforeFlush,
    /// Ranks of one partition disagree on the partition's collective
    /// sequence (different fence counts or round labels).
    CollectiveOrderMismatch,
    /// The fence/flush wait-for graph has a cycle: the recorded
    /// schedule could deadlock. The message names the ranks.
    CollectiveCycle,
    /// A partition recorded more than one election winner.
    ConflictingElections,
    /// A flush retry was recorded but no flush of the same file range
    /// ever completed after it — the recovery path lost the segment.
    RetryWithoutFlush,
}

impl ViolationKind {
    /// Stable machine-readable identifier.
    pub fn code(&self) -> &'static str {
        match self {
            ViolationKind::PutOutsideEpoch => "put-outside-epoch",
            ViolationKind::FlushOutsideEpoch => "flush-outside-epoch",
            ViolationKind::ConcurrentOverlappingPuts => "concurrent-overlapping-puts",
            ViolationKind::RefillBeforeFlush => "refill-before-flush",
            ViolationKind::CollectiveOrderMismatch => "collective-order-mismatch",
            ViolationKind::CollectiveCycle => "collective-cycle",
            ViolationKind::ConflictingElections => "conflicting-elections",
            ViolationKind::RetryWithoutFlush => "retry-without-flush",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One detected violation: a kind plus a human diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What class of invariant was broken.
    pub kind: ViolationKind,
    /// Human-readable diagnosis naming ranks, rounds, and offsets.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind.code(), self.message)
    }
}

/// Check every pipeline invariant on `trace`; an empty result means the
/// recorded execution is protocol-clean.
pub fn check(trace: &Trace) -> Vec<Violation> {
    let mut out = Vec::new();
    check_elections(trace, &mut out);
    check_collective_order(trace, &mut out);
    let exec = hb::Execution::replay(trace, &mut out);
    check_overlaps(trace, &exec, &mut out);
    check_refill(trace, &exec, &mut out);
    check_retries(trace, &exec, &mut out);
    out
}

/// Invariant 4 (part 1): at most one election winner per partition, and
/// — after a crash — at most one reelected standby per crash round (all
/// members derive the standby from the same shared plan, so divergence
/// means the collective recovery decision split-brained).
fn check_elections(trace: &Trace, out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    let mut winners: BTreeMap<u32, usize> = BTreeMap::new();
    let mut standbys: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for e in trace.events() {
        match e.op {
            TraceOp::Elect => match winners.get(&e.partition) {
                None => {
                    winners.insert(e.partition, e.peer);
                }
                Some(&w) if w == e.peer => {}
                Some(&w) => out.push(Violation {
                    kind: ViolationKind::ConflictingElections,
                    message: format!(
                        "partition {} recorded conflicting election winners: rank {} and rank {}",
                        e.partition, w, e.peer
                    ),
                }),
            },
            TraceOp::Reelect => match standbys.get(&(e.partition, e.round)) {
                None => {
                    standbys.insert((e.partition, e.round), e.peer);
                }
                Some(&w) if w == e.peer => {}
                Some(&w) => out.push(Violation {
                    kind: ViolationKind::ConflictingElections,
                    message: format!(
                        "partition {}: members disagree on the standby re-elected at \
                         round {} — rank {} vs rank {}",
                        e.partition, e.round, w, e.peer
                    ),
                }),
            },
            _ => {}
        }
    }
}

/// Invariant 4 (part 2): within a partition, every participating rank
/// records the same number of fences with the same round labels, in the
/// same order.
fn check_collective_order(trace: &Trace, out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    // (partition -> rank -> round labels of its fences, in lane order)
    let mut seqs: BTreeMap<u32, BTreeMap<usize, Vec<u32>>> = BTreeMap::new();
    for e in trace.events() {
        if e.op == TraceOp::Fence {
            seqs.entry(e.partition).or_default().entry(e.rank).or_default().push(e.round);
        }
    }
    for (p, by_rank) in &seqs {
        let mut iter = by_rank.iter();
        let Some((&r0, ref_seq)) = iter.next() else { continue };
        for (&r, seq) in iter {
            if seq.len() != ref_seq.len() {
                out.push(Violation {
                    kind: ViolationKind::CollectiveOrderMismatch,
                    message: format!(
                        "partition {p}: rank {r} recorded {} fences but rank {r0} recorded {}",
                        seq.len(),
                        ref_seq.len()
                    ),
                });
            } else if seq != ref_seq {
                let k = seq.iter().zip(ref_seq.iter()).position(|(a, b)| a != b).unwrap_or(0);
                out.push(Violation {
                    kind: ViolationKind::CollectiveOrderMismatch,
                    message: format!(
                        "partition {p}: fence #{k} is labelled round {} by rank {r} \
                         but round {} by rank {r0} — the ranks disagree on the \
                         collective order",
                        seq[k], ref_seq[k]
                    ),
                });
            }
        }
    }
}

/// Invariant 2: overlapping puts into one window must be HB-ordered.
fn check_overlaps(trace: &Trace, exec: &hb::Execution, out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    let events = trace.events();
    // partition -> put event indices carrying a window offset
    let mut puts: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.op == TraceOp::RmaPut && e.offset != NO_OFFSET && e.bytes > 0 {
            puts.entry(e.partition).or_default().push(i);
        }
    }
    for (p, mut idxs) in puts {
        idxs.sort_by_key(|&i| events[i].offset);
        // Sweep: `active` holds puts whose byte range may still overlap
        // later (sorted-by-offset) puts.
        let mut active: Vec<usize> = Vec::new();
        for &i in &idxs {
            let e = &events[i];
            active.retain(|&j| {
                let a = &events[j];
                a.offset + a.bytes > e.offset
            });
            for &j in &active {
                let a = &events[j];
                if a.rank == e.rank {
                    continue; // same lane: always program-ordered
                }
                if !exec.happens_before(j, i) && !exec.happens_before(i, j) {
                    out.push(Violation {
                        kind: ViolationKind::ConcurrentOverlappingPuts,
                        message: format!(
                            "partition {p}: concurrent overlapping puts into the \
                             aggregation window — rank {} round {} wrote [{}, {}) and \
                             rank {} round {} wrote [{}, {}), with no happens-before \
                             order between them",
                            a.rank,
                            a.round,
                            a.offset,
                            a.offset + a.bytes,
                            e.rank,
                            e.round,
                            e.offset,
                            e.offset + e.bytes
                        ),
                    });
                }
            }
            active.push(i);
        }
    }
}

/// Invariant 3: the flush of round `r` must complete before the puts of
/// round `r + 2` (same double-buffer slot) start refilling the buffer.
///
/// Fenced partitions use the happens-before relation; fence-less
/// (simulator) partitions use completion timestamps, which the plan DAG
/// makes authoritative.
fn check_refill(trace: &Trace, exec: &hb::Execution, out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    let events = trace.events();
    let mut flushes: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    let mut puts: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        match e.op {
            TraceOp::Flush => flushes.entry(e.partition).or_default().push(i),
            TraceOp::RmaPut => puts.entry(e.partition).or_default().push(i),
            _ => {}
        }
    }
    for (p, fl) in &flushes {
        let Some(pt) = puts.get(p) else { continue };
        let fenced = exec.partition_is_fenced(*p);
        for &fi in fl {
            let f = &events[fi];
            for &qi in pt {
                let q = &events[qi];
                // Same physical buffer: two rounds later, same parity.
                if q.round < f.round + 2 || !(q.round - f.round).is_multiple_of(2) {
                    continue;
                }
                let ordered = if fenced {
                    exec.happens_before(fi, qi)
                } else {
                    f.t_ns <= q.t_ns
                };
                if !ordered {
                    out.push(Violation {
                        kind: ViolationKind::RefillBeforeFlush,
                        message: format!(
                            "partition {p}: buffer refilled before its flush drained — \
                             rank {} put {} B for round {} into the slot whose round-{} \
                             flush ({} B at file offset {}) had not completed",
                            q.rank, q.bytes, q.round, f.round, f.bytes, f.offset
                        ),
                    });
                }
            }
        }
    }
}

/// Invariant 6 (part 2): every recorded `Retry` must be resolved — a
/// flush of the same (partition, file offset) completes after it. The
/// file worker records a retry per failed attempt and a `Flush` only on
/// completion; a retry with no subsequent flush means the segment was
/// dropped by the recovery path.
fn check_retries(trace: &Trace, exec: &hb::Execution, out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    let events = trace.events();
    let mut flushes: BTreeMap<(u32, u64), Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.op == TraceOp::Flush {
            flushes.entry((e.partition, e.offset)).or_default().push(i);
        }
    }
    for (i, e) in events.iter().enumerate() {
        if e.op != TraceOp::Retry {
            continue;
        }
        let resolved = flushes.get(&(e.partition, e.offset)).is_some_and(|fl| {
            fl.iter().any(|&fi| {
                if exec.partition_is_fenced(e.partition) {
                    exec.happens_before(i, fi)
                } else {
                    e.t_ns <= events[fi].t_ns
                }
            })
        });
        if !resolved {
            out.push(Violation {
                kind: ViolationKind::RetryWithoutFlush,
                message: format!(
                    "partition {}: rank {} retried the flush of {} B at file offset {} \
                     (round {}), but no flush of that range ever completed afterwards",
                    e.partition, e.rank, e.bytes, e.offset, e.round
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests;
