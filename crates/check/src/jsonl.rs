//! Parser for the JSON Lines trace format `Trace::write_jsonl` emits.
//!
//! One flat JSON object per line, e.g.
//!
//! ```text
//! {"t_ns":1200,"rank":3,"partition":0,"round":1,"phase":"aggregation","op":"rma_put","bytes":512,"offset":2048,"peer":0}
//! ```
//!
//! `offset` and `peer` are optional (omitted at their sentinel
//! values), as is `coalesced` (omitted when 0).
//! The workspace is std-only, so this is a hand-rolled parser for
//! exactly this shape: flat objects, integer and plain-word string
//! values, no escapes or nesting. Unknown keys are ignored so the
//! format can grow without breaking old checkers.

use tapioca_trace::{Phase, Trace, TraceEvent, TraceOp, NO_OFFSET, NO_PEER};

/// Parse a whole JSONL document into a [`Trace`]. Blank lines are
/// skipped; any malformed line aborts with a diagnostic naming it.
pub fn parse_jsonl(input: &str) -> Result<Trace, String> {
    let mut events = Vec::new();
    for (ln, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(
            parse_line(line).map_err(|e| format!("line {}: {e} in {line:?}", ln + 1))?,
        );
    }
    Ok(Trace::from_events(events))
}

fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("expected a {...} object")?;
    let mut t_ns = None;
    let mut rank = None;
    let mut partition = None;
    let mut round = None;
    let mut phase = None;
    let mut op = None;
    let mut bytes = None;
    let mut offset = NO_OFFSET;
    let mut peer = NO_PEER;
    let mut coalesced = 0u32;
    for field in body.split(',') {
        let (key, value) = field.split_once(':').ok_or("expected \"key\":value")?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "t_ns" => t_ns = Some(parse_u64(value)?),
            "rank" => rank = Some(parse_u64(value)? as usize),
            "partition" => partition = Some(parse_u64(value)? as u32),
            "round" => round = Some(parse_u64(value)? as u32),
            "bytes" => bytes = Some(parse_u64(value)?),
            "offset" => offset = parse_u64(value)?,
            "peer" => peer = parse_u64(value)? as usize,
            "coalesced" => coalesced = parse_u64(value)? as u32,
            "phase" => {
                phase = Some(match value.trim_matches('"') {
                    "aggregation" => Phase::Aggregation,
                    "io" => Phase::Io,
                    "sync" => Phase::Sync,
                    other => return Err(format!("unknown phase {other:?}")),
                })
            }
            "op" => {
                op = Some(match value.trim_matches('"') {
                    "rma_put" => TraceOp::RmaPut,
                    "flush" => TraceOp::Flush,
                    "fence" => TraceOp::Fence,
                    "elect" => TraceOp::Elect,
                    "crash" => TraceOp::Crash,
                    "reelect" => TraceOp::Reelect,
                    "retry" => TraceOp::Retry,
                    "degrade" => TraceOp::Degrade,
                    other => return Err(format!("unknown op {other:?}")),
                })
            }
            _ => {} // forward compatibility
        }
    }
    Ok(TraceEvent {
        t_ns: t_ns.ok_or("missing t_ns")?,
        rank: rank.ok_or("missing rank")?,
        partition: partition.ok_or("missing partition")?,
        round: round.ok_or("missing round")?,
        phase: phase.ok_or("missing phase")?,
        op: op.ok_or("missing op")?,
        bytes: bytes.ok_or("missing bytes")?,
        peer,
        offset,
        coalesced,
    })
}

fn parse_u64(v: &str) -> Result<u64, String> {
    v.parse::<u64>().map_err(|_| format!("expected an unsigned integer, got {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_written_jsonl() {
        let t = Trace::from_events(vec![
            TraceEvent {
                t_ns: 5,
                rank: 1,
                partition: 0,
                round: 0,
                phase: Phase::Aggregation,
                op: TraceOp::RmaPut,
                bytes: 64,
                offset: 128,
                peer: 0,
                coalesced: 0,
            },
            TraceEvent {
                t_ns: 9,
                rank: 0,
                partition: 0,
                round: 0,
                phase: Phase::Io,
                op: TraceOp::Flush,
                bytes: 64,
                offset: 4096,
                peer: NO_PEER,
                coalesced: 0,
            },
            TraceEvent {
                t_ns: 12,
                rank: 0,
                partition: 0,
                round: 0,
                phase: Phase::Sync,
                op: TraceOp::Fence,
                bytes: 0,
                offset: NO_OFFSET,
                peer: NO_PEER,
                coalesced: 0,
            },
        ]);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let parsed = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let doc = "\n{\"t_ns\":1,\"rank\":0,\"partition\":0,\"round\":0,\
                   \"phase\":\"sync\",\"op\":\"fence\",\"bytes\":0}\n\n";
        assert_eq!(parse_jsonl(doc).unwrap().len(), 1);
    }

    #[test]
    fn malformed_lines_name_the_line() {
        let err = parse_jsonl("{\"t_ns\":1}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_jsonl("not json").unwrap_err();
        assert!(err.contains("expected a"), "{err}");
        let err = parse_jsonl(
            "{\"t_ns\":1,\"rank\":0,\"partition\":0,\"round\":0,\
             \"phase\":\"warp\",\"op\":\"fence\",\"bytes\":0}",
        )
        .unwrap_err();
        assert!(err.contains("unknown phase"), "{err}");
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let doc = "{\"t_ns\":1,\"rank\":0,\"partition\":0,\"round\":0,\
                   \"phase\":\"sync\",\"op\":\"fence\",\"bytes\":0,\"future\":7}";
        assert_eq!(parse_jsonl(doc).unwrap().len(), 1);
    }
}
