//! Placement explorer: watch the paper's cost model pick aggregators.
//!
//! Run with: `cargo run --example placement_explorer`
//!
//! Builds the Mira (BG/Q, 512 nodes) machine model, forms one partition
//! of ranks spread across a Pset, and prints the `C1` (aggregation) and
//! `C2` (I/O) costs of every candidate together with which one each
//! strategy elects. This is the Sec. IV-B machinery in isolation — no
//! data is moved.

use tapioca::placement::{
    aggregation_cost, elect_aggregator, io_cost, PlacementStrategy,
};
use tapioca_topology::{mira_profile, TopologyProvider, MIB};

fn main() {
    let profile = mira_profile(512, 16);
    let machine = &profile.machine;
    println!("machine: {}", profile.name);
    println!(
        "{} nodes x {} ranks/node, {}D torus\n",
        machine.num_nodes(),
        machine.ranks_per_node(),
        machine.network_dimensions()
    );

    // A partition: 16 member ranks spread over one Pset (nodes 0..128),
    // one rank every 8 nodes. Each contributes 16 MiB.
    let members: Vec<usize> = (0..16).map(|i| i * 8 * 16).collect();
    let weights = vec![16 * MIB; members.len()];
    let io_nodes = machine.io_nodes_for(&members);
    let io = io_nodes[0];
    let total: u64 = weights.iter().sum();

    println!("partition of {} members, {} MiB total, I/O node {io}", members.len(), total / MIB);
    println!("{:>6} {:>14} {:>10} {:>12} {:>12} {:>12}", "cand", "coords", "d(A,IO)", "C1 (ms)", "C2 (ms)", "C1+C2 (ms)");
    let mut best = (f64::INFINITY, 0usize);
    for (i, &m) in members.iter().enumerate() {
        let c1 = aggregation_cost(machine, &members, &weights, i);
        let c2 = io_cost(machine, m, io, total);
        let coords = machine.rank_to_coordinates(m);
        let d_io = machine.distance_to_io_node(m, io).expect("known on BG/Q");
        if c1 + c2 < best.0 {
            best = (c1 + c2, i);
        }
        println!(
            "{i:>6} {:>14} {d_io:>10} {:>12.3} {:>12.3} {:>12.3}",
            format!("{coords:?}"),
            c1 * 1e3,
            c2 * 1e3,
            (c1 + c2) * 1e3
        );
    }
    println!("\nminimum objective: candidate {} (the MINLOC winner)\n", best.1);

    for strategy in [
        PlacementStrategy::TopologyAware,
        PlacementStrategy::RankOrder,
        PlacementStrategy::ShortestPathToIo,
        PlacementStrategy::Random { seed: 42 },
        PlacementStrategy::WorstCase,
    ] {
        let e = elect_aggregator(machine, &members, &weights, io, 0, strategy);
        let cost = aggregation_cost(machine, &members, &weights, e)
            + io_cost(machine, members[e], io, total);
        println!("{strategy:?} elects candidate {e:>2} (objective {:.3} ms)", cost * 1e3);
    }

    // Sanity: the topology-aware election matches the explicit minimum.
    let ta = elect_aggregator(machine, &members, &weights, io, 0, PlacementStrategy::TopologyAware);
    assert_eq!(ta, best.1, "election must minimize the objective");
    println!("\nelection matches the explicit cost minimum.");
}
