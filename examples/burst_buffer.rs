//! Burst-buffer staging (the paper's Sec. VI future work) from the
//! application's point of view: how long is a checkpoint *perceived* to
//! take when aggregated data lands on node-local flash first?
//!
//! Run with: `cargo run --release --example burst_buffer`

use tapioca::config::TapiocaConfig;
use tapioca::schedule::WriteDecl;
use tapioca::sim_exec::{CollectiveSpec, GroupSpec};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_tiers::{run_tiered_sim, Destination, Tier, TieredConfig};
use tapioca_topology::{theta_profile, MIB};

fn main() {
    let nodes = 256;
    let rpn = 16;
    let nranks = nodes * rpn;
    let per = 8 * MIB; // 8 MiB checkpoint data per rank
    let profile = theta_profile(nodes, rpn);
    let tun = LustreTunables::theta_optimized();
    let cfg = TapiocaConfig { num_aggregators: 96, buffer_size: 8 * MIB, ..Default::default() };
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..nranks).collect(),
            decls: (0..nranks as u64)
                .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                .collect(),
        }],
        mode: AccessMode::Write,
    };
    let gib = (1u64 << 30) as f64;

    println!(
        "checkpoint: {} ranks x {} MiB = {:.0} GiB on {} Theta nodes\n",
        nranks,
        per / MIB,
        (nranks as u64 * per) as f64 / gib,
        nodes
    );
    for (name, tiered) in [
        ("direct to Lustre", TieredConfig::default()),
        (
            "stage on node-local SSD, drain async",
            TieredConfig { buffer_tier: Tier::Dram, destination: Destination::BurstBufferThenDrain },
        ),
        ("MCDRAM buffers + SSD staging", TieredConfig::mcdram_burst_buffer()),
    ] {
        let r = run_tiered_sim(&profile, &tun, &spec, &cfg, &tiered);
        println!("{name}:");
        println!(
            "  application blocked for {:.2} s ({:.2} GiB/s perceived)",
            r.time_to_safe,
            r.perceived_bandwidth / gib
        );
        println!(
            "  data on the PFS after   {:.2} s ({:.2} GiB/s end-to-end)\n",
            r.time_to_pfs,
            r.end_to_end_bandwidth / gib
        );
    }
    println!("staging moves the Lustre round trip off the critical path;");
    println!("the drain overlaps with the application's next compute phase.");
}
