//! Mesh checkpoint: a 2D stencil code's block-decomposed array written
//! through TAPIOCA — the "meshes, 2D and 3D arrays" layout of the
//! paper's future work, exercised end to end.
//!
//! Run with: `cargo run --example mesh_checkpoint`
//!
//! A 96x96 grid of f64 cells is decomposed over a 4x3 process grid.
//! Each rank's block is a set of strided row-runs in the row-major file;
//! TAPIOCA's declared schedule interleaves all ranks' runs into dense
//! buffers (the schedule statistics printed below show 100% fill), and
//! the output is verified cell by cell.

use tapioca::prelude::*;
use tapioca::stats::schedule_stats;
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_workloads::grid::GridDecomp;

/// Cell value at (row, col): a recognisable function of the coordinates.
fn cell(row: u64, col: u64) -> f64 {
    (row * 1000 + col) as f64 * 0.5
}

fn main() {
    let grid = GridDecomp::new_2d(96, 96, 4, 3, 8);
    let nranks = grid.num_ranks();
    println!(
        "checkpointing a 96x96 f64 grid over a 4x3 process grid ({} runs/rank)...",
        grid.decls_of_rank(0).len()
    );

    let dir = std::env::temp_dir().join("tapioca-mesh");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("mesh-{}.dat", std::process::id()));

    let g = grid.clone();
    let p = path.clone();
    let stats = Runtime::run(nranks, move |comm| {
        let file = SharedFile::open_shared(&comm, &p);
        let rank = comm.rank();
        let decls = g.decls_of_rank(rank);
        let mut io = Session::builder(&comm, file)
            .declarations(decls.clone())
            .config(TapiocaConfig {
                num_aggregators: 4,
                buffer_size: 4096,
                ..Default::default()
            })
            .build()
            .unwrap();
        let st = schedule_stats(io.schedule());
        // fill each run with its cells' values
        let ncols = 96u64;
        for d in &decls {
            let first_cell = d.offset / 8;
            let (row, col0) = (first_cell / ncols, first_cell % ncols);
            let mut bytes = Vec::with_capacity(d.len as usize);
            for c in 0..d.len / 8 {
                bytes.extend_from_slice(&cell(row, col0 + c).to_le_bytes());
            }
            io.write(d.offset, &bytes).unwrap();
        }
        io.finalize();
        st
    });

    // every rank computed the same schedule; report its statistics
    let st = &stats[0];
    println!(
        "schedule: {} partitions, {} rounds, mean buffer fill {:.0}%, load imbalance {:.2}",
        st.active_partitions,
        st.total_rounds,
        st.mean_fill * 100.0,
        st.load_imbalance
    );

    // verify the whole grid
    let bytes = std::fs::read(&path).expect("read checkpoint");
    assert_eq!(bytes.len() as u64, grid.total_bytes());
    for row in 0..96u64 {
        for col in 0..96u64 {
            let off = ((row * 96 + col) * 8) as usize;
            let v = f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            assert_eq!(v, cell(row, col), "cell ({row},{col}) corrupted");
        }
    }
    println!("all 9,216 cells verified.");
    std::fs::remove_file(&path).ok();
}
