//! Weather-model restart files: a domain-specific multi-variable
//! checkpoint, written through TAPIOCA in thread mode and then projected
//! to supercomputer scale with the simulator.
//!
//! Run with: `cargo run --release --example weather_restart`
//!
//! A toy atmosphere model decomposes a 2D grid over ranks; each rank
//! checkpoints five fields (pressure, two wind components, temperature,
//! humidity) of its subdomain into one restart file laid out field-major
//! (all pressure, then all u-wind, ...). Exactly the access pattern of
//! the paper's Algorithm 2: several declared writes per rank at strided
//! offsets — the case where TAPIOCA's cross-variable scheduling shines.
//!
//! The model runs several timesteps and re-checkpoints after each one
//! through a single reused [`Session`]: the declaration allgather,
//! schedule, and aggregator election are paid once, then every
//! subsequent epoch streams straight into the pipeline.

use tapioca::prelude::*;
use tapioca::sim_exec::{CollectiveSpec, GroupSpec, SimSession, StorageConfig};
use tapioca_baseline::sim::run_mpiio_sim;
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MIB};

/// Fields checkpointed per subdomain.
const FIELDS: [&str; 5] = ["pressure", "u-wind", "v-wind", "temperature", "humidity"];
/// f64 cells per rank per field in the thread-mode demo.
const CELLS: u64 = 4096;

fn field_decls(rank: u64, nranks: u64, bytes_per_field: u64) -> Vec<WriteDecl> {
    (0..FIELDS.len() as u64)
        .map(|f| WriteDecl {
            offset: f * nranks * bytes_per_field + rank * bytes_per_field,
            len: bytes_per_field,
        })
        .collect()
}

fn main() {
    // ---- part 1: functional checkpoint + restart on the thread runtime
    let dir = std::env::temp_dir().join("tapioca-weather");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("restart-{}.dat", std::process::id()));

    const RANKS: usize = 12;
    let bytes_per_field = CELLS * 8;
    let cfg = TapiocaConfig {
        num_aggregators: 3,
        buffer_size: 128 * 1024,
        ..Default::default()
    };

    const TIMESTEPS: u64 = 3;
    println!("checkpointing {} fields x {RANKS} subdomains ({} KiB each), {TIMESTEPS} timesteps...",
        FIELDS.len(), bytes_per_field / 1024);
    Runtime::run(RANKS, |comm| {
        let file = SharedFile::open_shared(&comm, &path);
        let rank = comm.rank() as u64;
        let decls = field_decls(rank, RANKS as u64, bytes_per_field);
        // One session for the whole run: the allgather, schedule, and
        // election happen here, then every timestep reuses them.
        let mut io = Session::builder(&comm, file)
            .declarations(decls.clone())
            .config(cfg.clone())
            .build()
            .unwrap();
        for step in 0..TIMESTEPS {
            for (f, d) in decls.iter().enumerate() {
                // a recognisable synthetic field: value = f(step, field, rank, cell)
                let data: Vec<u8> = (0..d.len)
                    .map(|i| (step * 59 + f as u64 * 101 + rank * 13 + i / 8) as u8)
                    .collect();
                io.write(d.offset, &data).unwrap();
            }
        }
        // restart: read the final checkpoint back and verify
        let restored = io.read_declared().unwrap();
        let last = TIMESTEPS - 1;
        for (f, (d, r)) in decls.iter().zip(&restored).enumerate() {
            assert_eq!(r.len() as u64, d.len);
            assert!(r.iter().enumerate().all(|(i, &b)| {
                b == (last * 59 + f as u64 * 101 + rank * 13 + i as u64 / 8) as u8
            }), "field {f} of rank {rank} corrupted");
        }
        assert_eq!(io.epochs_completed(), TIMESTEPS);
        io.finalize();
    });
    println!("all {TIMESTEPS} checkpoints verified through restart read on all ranks.\n");
    std::fs::remove_file(&path).ok();

    // ---- part 2: what would this cost at machine scale?
    println!("projecting to 512 Theta nodes (8,192 ranks, 16 MiB/field/rank)...");
    let nodes = 512;
    let rpn = 16;
    let nranks = nodes * rpn;
    let field_bytes = 16 * MIB;
    let decls: Vec<Vec<WriteDecl>> = (0..nranks as u64)
        .map(|r| field_decls(r, nranks as u64, field_bytes))
        .collect();
    let spec = CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..nranks).collect(), decls }],
        mode: AccessMode::Write,
    };
    let profile = theta_profile(nodes, rpn);
    let storage = StorageConfig::Lustre(LustreTunables::theta_hacc());
    let sim_cfg = TapiocaConfig {
        num_aggregators: 192,
        buffer_size: 16 * MIB,
        ..Default::default()
    };
    // Plan once, simulate one epoch per timestep — the simulator-side
    // mirror of the reused thread-mode session above.
    let mut sim = SimSession::build(&profile, &storage, &spec, &sim_cfg).unwrap();
    let t = sim.run_epoch().unwrap();
    let b = run_mpiio_sim(&profile, &storage, &spec, &MpiIoConfig {
        cb_aggregators: 192,
        cb_buffer_size: 16 * MIB,
    })
    .unwrap();
    let gib = (1u64 << 30) as f64;
    println!(
        "  checkpoint volume: {:.1} GiB",
        t.bytes / gib
    );
    println!(
        "  TAPIOCA:  {:.2} s  ({:.2} GiB/s)",
        t.elapsed, t.bandwidth / gib
    );
    println!(
        "  MPI I/O:  {:.2} s  ({:.2} GiB/s)  [{} collective calls]",
        b.elapsed,
        b.bandwidth / gib,
        FIELDS.len()
    );
    println!(
        "  declaring all {} fields up front is worth {:.1}x here.",
        FIELDS.len(),
        t.bandwidth / b.bandwidth
    );
}
