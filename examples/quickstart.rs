//! Quickstart: write a shared file collectively through TAPIOCA and read
//! it back through the two-phase read path.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Eight "MPI ranks" (threads) each declare one contiguous block, write
//! it through the aggregation pipeline (2 aggregators, double-buffered),
//! and verify the bytes round-trip.

use tapioca::prelude::*;
use tapioca_mpi::{Runtime, SharedFile};

fn main() {
    let dir = std::env::temp_dir().join("tapioca-quickstart");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("quickstart-{}.dat", std::process::id()));

    const RANKS: usize = 8;
    const BYTES_PER_RANK: u64 = 1 << 20; // 1 MiB each

    let cfg = TapiocaConfig {
        num_aggregators: 2,
        buffer_size: 256 * 1024, // 256 KiB pipeline buffers
        ..Default::default()
    };

    println!("writing {RANKS} x {BYTES_PER_RANK} bytes through TAPIOCA...");
    Runtime::run(RANKS, |comm| {
        let file = SharedFile::open_shared(&comm, &path);
        let rank = comm.rank() as u64;

        // 1. Declare the upcoming write (TAPIOCA_Init).
        let decls = vec![WriteDecl { offset: rank * BYTES_PER_RANK, len: BYTES_PER_RANK }];
        let mut io = Session::builder(&comm, file)
            .declarations(decls)
            .config(cfg.clone())
            .build()
            .unwrap();

        // 2. Issue it (TAPIOCA_Write). The last declared write triggers
        //    the collective aggregation pipeline.
        let payload: Vec<u8> = (0..BYTES_PER_RANK).map(|i| (rank * 37 + i) as u8).collect();
        io.write(rank * BYTES_PER_RANK, &payload).unwrap();

        // 3. Read everything back through the two-phase read.
        let back = io.read_declared().unwrap();
        assert_eq!(back[0], payload, "rank {rank}: read-back mismatch");
        io.finalize();
    });

    let len = std::fs::metadata(&path).expect("stat output").len();
    println!("done: {} bytes on disk at {}", len, path.display());
    assert_eq!(len, RANKS as u64 * BYTES_PER_RANK);
    std::fs::remove_file(&path).ok();
    println!("round-trip verified for all {RANKS} ranks.");
}
