//! HACC-IO: the paper's cosmology I/O kernel, run end-to-end on the
//! thread runtime in both layouts, against both TAPIOCA and the
//! ROMIO-like baseline.
//!
//! Run with: `cargo run --example hacc_io`
//!
//! Every rank owns a set of particles (9 variables, 38 bytes each).
//! * **AoS**: one contiguous block per rank — one declared write.
//! * **SoA**: nine variable segments per rank — nine declared writes,
//!   which TAPIOCA aggregates into *one* schedule while plain collective
//!   I/O issues nine independent calls (the paper's Fig. 2 contrast).
//!
//! Every byte of both output files is verified.

use tapioca::prelude::*;
use tapioca_baseline::romio::{collective_write, MpiIoConfig};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_workloads::hacc::{HaccIo, Layout, PARTICLE_BYTES};

const RANKS: usize = 16;
const PARTICLES: u64 = 2_000;

fn verify(path: &std::path::Path, w: &HaccIo) {
    let bytes = std::fs::read(path).expect("read output");
    assert_eq!(bytes.len() as u64, w.total_bytes());
    for r in 0..w.num_ranks as u64 {
        for (v, d) in w.decls_of_rank(r).iter().enumerate() {
            let got = &bytes[d.offset as usize..(d.offset + d.len) as usize];
            assert_eq!(got, w.payload(r, v), "rank {r} var {v} corrupted");
        }
    }
}

fn run_tapioca(w: &HaccIo, path: &std::path::Path) {
    let cfg = TapiocaConfig {
        num_aggregators: 4,
        buffer_size: 64 * 1024,
        ..Default::default()
    };
    let w = *w;
    Runtime::run(w.num_ranks, move |comm| {
        let file = SharedFile::open_shared(&comm, path);
        let rank = comm.rank() as u64;
        let decls = w.decls_of_rank(rank);
        let mut io = Session::builder(&comm, file)
            .declarations(decls.clone())
            .config(cfg.clone())
            .build()
            .unwrap();
        for (v, d) in decls.iter().enumerate() {
            io.write(d.offset, &w.payload(rank, v)).unwrap();
        }
        io.finalize();
    });
}

fn run_baseline(w: &HaccIo, path: &std::path::Path) {
    let cfg = MpiIoConfig { cb_aggregators: 4, cb_buffer_size: 64 * 1024 };
    let w = *w;
    Runtime::run(w.num_ranks, move |comm| {
        let file = SharedFile::open_shared(&comm, path);
        let rank = comm.rank() as u64;
        // plain MPI I/O: one collective call per declared variable
        for (v, d) in w.decls_of_rank(rank).iter().enumerate() {
            collective_write(&comm, &file, d.offset, &w.payload(rank, v), &cfg).unwrap();
        }
    });
}

fn main() {
    let dir = std::env::temp_dir().join("tapioca-hacc-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let pid = std::process::id();

    for layout in [Layout::ArrayOfStructs, Layout::StructOfArrays] {
        let w = HaccIo { num_ranks: RANKS, particles_per_rank: PARTICLES, layout };
        let vars = w.decls_of_rank(0).len();
        println!(
            "HACC-IO {layout:?}: {RANKS} ranks x {PARTICLES} particles ({} bytes/rank, {vars} declared writes/rank)",
            PARTICLES * PARTICLE_BYTES
        );

        let p1 = dir.join(format!("tapioca-{layout:?}-{pid}.dat"));
        run_tapioca(&w, &p1);
        verify(&p1, &w);
        println!("  TAPIOCA output verified byte-for-byte");

        let p2 = dir.join(format!("mpiio-{layout:?}-{pid}.dat"));
        run_baseline(&w, &p2);
        verify(&p2, &w);
        println!("  baseline collective I/O output verified byte-for-byte");

        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
    println!("both layouts, both libraries: identical files, different data paths.");
}
