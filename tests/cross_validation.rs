//! Cross-validation between the two implementations and the two
//! execution modes:
//!
//! * TAPIOCA and the ROMIO-like baseline must produce *identical files*
//!   for the same workload (they differ in data path, never in data);
//! * the simulation executor must run the *same schedule objects* thread
//!   mode runs, and its reports must obey physical invariants.

use tapioca::prelude::*;
use tapioca::schedule::{compute_schedule, ScheduleParams};
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_baseline::romio::{collective_write, MpiIoConfig};
use tapioca_baseline::sim::run_mpiio_sim;
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
use tapioca_topology::{mira_profile, theta_profile, MIB};
use tapioca_workloads::hacc::{HaccIo, Layout};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-xval");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

#[test]
fn tapioca_and_baseline_write_identical_files() {
    let w = HaccIo { num_ranks: 10, particles_per_rank: 777, layout: Layout::StructOfArrays };
    let p_t = tmp("ident-tapioca");
    let p_b = tmp("ident-baseline");

    let wl = w;
    Runtime::run(w.num_ranks, move |comm| {
        let file = SharedFile::open_shared(&comm, &p_t);
        let r = comm.rank() as u64;
        let decls = wl.decls_of_rank(r);
        let mut io = Session::builder(&comm, file)
            .declarations(decls.clone())
            .config(TapiocaConfig {
                num_aggregators: 3,
                buffer_size: 2048,
                ..Default::default()
            })
            .build()
            .unwrap();
        for (v, d) in decls.iter().enumerate() {
            io.write(d.offset, &wl.payload(r, v)).unwrap();
        }
        io.finalize();
    });
    let wl = w;
    Runtime::run(w.num_ranks, move |comm| {
        let file = SharedFile::open_shared(&comm, &p_b);
        let r = comm.rank() as u64;
        let cfg = MpiIoConfig { cb_aggregators: 3, cb_buffer_size: 2048 };
        for (v, d) in wl.decls_of_rank(r).iter().enumerate() {
            collective_write(&comm, &file, d.offset, &wl.payload(r, v), &cfg).unwrap();
        }
    });

    let a = std::fs::read(tmp("ident-tapioca")).unwrap();
    let b = std::fs::read(tmp("ident-baseline")).unwrap();
    assert_eq!(a.len(), b.len());
    assert!(a == b, "the two libraries must write byte-identical files");
    std::fs::remove_file(tmp("ident-tapioca")).ok();
    std::fs::remove_file(tmp("ident-baseline")).ok();
}

/// Same schedule code in both modes: the schedule thread mode computes
/// from allgathered declarations equals the one the simulator driver
/// computes centrally.
#[test]
fn schedules_agree_between_modes() {
    let w = HaccIo { num_ranks: 16, particles_per_rank: 300, layout: Layout::StructOfArrays };
    let params = ScheduleParams { num_aggregators: 4, buffer_size: 1024, align_to_buffer: true };
    let central = compute_schedule(&w.decls(), params);

    // thread mode: every rank's instance exposes the same schedule
    let wl = w;
    let schedules = Runtime::run(w.num_ranks, move |comm| {
        let path = tmp("sched-agree");
        let file = SharedFile::open_shared(&comm, &path);
        let r = comm.rank() as u64;
        let decls = wl.decls_of_rank(r);
        let mut io = Session::builder(&comm, file)
            .declarations(decls.clone())
            .config(TapiocaConfig {
                num_aggregators: 4,
                buffer_size: 1024,
                ..Default::default()
            })
            .build()
            .unwrap();
        let sched = io.schedule().clone();
        for (v, d) in decls.iter().enumerate() {
            io.write(d.offset, &wl.payload(r, v)).unwrap();
        }
        io.finalize();
        sched
    });
    for s in &schedules {
        assert_eq!(s, &central, "all ranks and the central driver compute one schedule");
    }
    std::fs::remove_file(tmp("sched-agree")).ok();
}

fn theta_spec(nranks: usize, per: u64) -> CollectiveSpec {
    CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..nranks).collect(),
            decls: (0..nranks as u64)
                .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                .collect(),
        }],
        mode: AccessMode::Write,
    }
}

#[test]
fn simulation_is_deterministic() {
    let profile = theta_profile(64, 4);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    let spec = theta_spec(256, MIB);
    let cfg = TapiocaConfig { num_aggregators: 16, buffer_size: 8 * MIB, ..Default::default() };
    let a = run_tapioca_sim(&profile, &storage, &spec, &cfg).unwrap();
    let b = run_tapioca_sim(&profile, &storage, &spec, &cfg).unwrap();
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.bandwidth, b.bandwidth);
    assert_eq!(a.op_finish, b.op_finish);
}

#[test]
fn simulated_bandwidth_respects_physical_ceilings() {
    // Mira: a Pset cannot exceed its two 1.8 GiB/s bridge links.
    let profile = mira_profile(128, 4);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let nranks = 512;
    let per = 2 * MIB;
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..nranks).collect(),
            decls: (0..nranks as u64)
                .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                .collect(),
        }],
        mode: AccessMode::Write,
    };
    let cfg = TapiocaConfig { num_aggregators: 16, buffer_size: 16 * MIB, ..Default::default() };
    let rep = run_tapioca_sim(&profile, &storage, &spec, &cfg).unwrap();
    let gib = (1u64 << 30) as f64;
    assert!(rep.bandwidth <= 3.6 * gib * 1.001, "exceeds bridge-link physics");
    assert!(rep.bandwidth > 0.1 * gib, "implausibly slow");
    // every op completes within the reported makespan (instant local
    // transfers may legitimately finish at t = 0)
    assert!(rep.op_finish.iter().all(|&t| t >= 0.0 && t <= rep.elapsed + 1e-9));
}

#[test]
fn more_data_takes_longer() {
    let profile = theta_profile(32, 4);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    let cfg = TapiocaConfig { num_aggregators: 8, buffer_size: 8 * MIB, ..Default::default() };
    let small = run_tapioca_sim(&profile, &storage, &theta_spec(128, MIB), &cfg).unwrap();
    let large = run_tapioca_sim(&profile, &storage, &theta_spec(128, 4 * MIB), &cfg).unwrap();
    assert!(large.elapsed > small.elapsed);
    assert_eq!(large.bytes, 4.0 * small.bytes);
}

#[test]
fn baseline_sim_never_beats_tapioca_on_multivar() {
    let profile = theta_profile(32, 4);
    let storage = StorageConfig::Lustre(LustreTunables::theta_hacc());
    let w = HaccIo { num_ranks: 128, particles_per_rank: 10_000, layout: Layout::StructOfArrays };
    let spec = CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..128).collect(), decls: w.decls() }],
        mode: AccessMode::Write,
    };
    let t = run_tapioca_sim(&profile, &storage, &spec, &TapiocaConfig {
        num_aggregators: 8,
        buffer_size: 16 * MIB,
        ..Default::default()
    })
    .unwrap();
    let b = run_mpiio_sim(&profile, &storage, &spec, &MpiIoConfig {
        cb_aggregators: 8,
        cb_buffer_size: 16 * MIB,
    })
    .unwrap();
    assert!(t.bandwidth >= b.bandwidth);
    // and both moved every byte
    assert_eq!(t.bytes, w.total_bytes() as f64);
    assert_eq!(b.bytes, w.total_bytes() as f64);
}
