//! Golden-config regression suite for the autotuner.
//!
//! The search is deterministic end to end (fixed enumeration order,
//! deterministic simulator, index-ordered parallel confirmation), so
//! the tuned configuration for a fixed workload is an exact value — any
//! drift in the cost model, the search staging, or the simulator that
//! changes a winner shows up here as a failed equality, not a vague
//! perf delta.
//!
//! Two layers:
//! * exact pins for the paper grid: {mira, theta} × {IOR, HACC} ×
//!   {write, read};
//! * a seeded property sweep (8+ workload variations per machine):
//!   `tuned bandwidth >= rule-based bandwidth`, always, plus run-to-run
//!   determinism.

use tapioca::autotune::{autotune, TierAssignment};
use tapioca::placement::PlacementStrategy;
use tapioca::sim_exec::{CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
use tapioca_topology::{mira_profile, theta_profile, MachineProfile, MIB};
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

const MIRA_NODES: usize = 128; // one Pset
const THETA_NODES: usize = 32;
const RPN: usize = 4;

fn single_file(n: usize, decls: Vec<Vec<tapioca::schedule::WriteDecl>>, mode: AccessMode) -> CollectiveSpec {
    CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..n).collect(), decls }],
        mode,
    }
}

fn ior(n: usize, bytes_per_rank: u64, mode: AccessMode) -> CollectiveSpec {
    single_file(n, IorSpec { num_ranks: n, bytes_per_rank }.decls(), mode)
}

fn hacc(n: usize, bytes_per_rank: u64, mode: AccessMode) -> CollectiveSpec {
    let w = HaccIo {
        num_ranks: n,
        particles_per_rank: bytes_per_rank / 38,
        layout: Layout::ArrayOfStructs,
    };
    single_file(n, w.decls(), mode)
}

fn mira() -> (MachineProfile, StorageConfig) {
    (mira_profile(MIRA_NODES, RPN), StorageConfig::Gpfs(GpfsTunables::mira_optimized()))
}

fn theta(stor: LustreTunables) -> (MachineProfile, StorageConfig) {
    (theta_profile(THETA_NODES, RPN), StorageConfig::Lustre(stor))
}

/// One pinned expectation.
struct Golden {
    name: &'static str,
    aggregators: usize,
    buffer: u64,
    strategy: PlacementStrategy,
    pipelining: bool,
    tier: TierAssignment,
}

fn check(
    g: &Golden,
    profile: &MachineProfile,
    storage: &StorageConfig,
    spec: &CollectiveSpec,
) {
    let out = autotune(profile, storage, spec).unwrap();
    assert_eq!(out.best.num_aggregators, g.aggregators, "{}: aggregators", g.name);
    assert_eq!(out.best.buffer_size, g.buffer, "{}: buffer", g.name);
    assert_eq!(out.best.strategy, g.strategy, "{}: strategy", g.name);
    assert_eq!(out.best.pipelining, g.pipelining, "{}: pipelining", g.name);
    assert_eq!(out.tier, g.tier, "{}: tier", g.name);
    assert!(
        out.tuned_bandwidth >= out.rule_bandwidth,
        "{}: tuned {} < rule {}",
        g.name,
        out.tuned_bandwidth,
        out.rule_bandwidth
    );
}

#[test]
fn golden_mira_ior_write() {
    let (profile, storage) = mira();
    let n = MIRA_NODES * RPN;
    check(
        &Golden {
            name: "mira/ior/write",
            aggregators: 16,
            buffer: 16 * MIB,
            strategy: PlacementStrategy::TopologyAware,
            pipelining: true,
            tier: TierAssignment::DramDirect,
        },
        &profile,
        &storage,
        &ior(n, MIB, AccessMode::Write),
    );
}

#[test]
fn golden_mira_ior_read() {
    let (profile, storage) = mira();
    let n = MIRA_NODES * RPN;
    check(
        &Golden {
            name: "mira/ior/read",
            aggregators: 16,
            buffer: 4 * MIB,
            strategy: PlacementStrategy::RankOrder,
            pipelining: true,
            tier: TierAssignment::DramDirect,
        },
        &profile,
        &storage,
        &ior(n, MIB, AccessMode::Read),
    );
}

#[test]
fn golden_mira_hacc_write() {
    let (profile, storage) = mira();
    let n = MIRA_NODES * RPN;
    check(
        &Golden {
            name: "mira/hacc/write",
            aggregators: 16,
            buffer: 16 * MIB,
            strategy: PlacementStrategy::TopologyAware,
            pipelining: true,
            tier: TierAssignment::DramDirect,
        },
        &profile,
        &storage,
        &hacc(n, MIB, AccessMode::Write),
    );
}

#[test]
fn golden_mira_hacc_read() {
    let (profile, storage) = mira();
    let n = MIRA_NODES * RPN;
    check(
        &Golden {
            name: "mira/hacc/read",
            aggregators: 16,
            buffer: 4 * MIB,
            strategy: PlacementStrategy::TopologyAware,
            pipelining: true,
            tier: TierAssignment::DramDirect,
        },
        &profile,
        &storage,
        &hacc(n, MIB, AccessMode::Read),
    );
}

#[test]
fn golden_theta_ior_write() {
    let (profile, storage) = theta(LustreTunables::theta_optimized());
    let n = THETA_NODES * RPN;
    check(
        &Golden {
            name: "theta/ior/write",
            aggregators: 96,
            buffer: 8 * MIB,
            strategy: PlacementStrategy::TopologyAware,
            pipelining: true,
            tier: TierAssignment::DramDirect,
        },
        &profile,
        &storage,
        &ior(n, MIB, AccessMode::Write),
    );
}

#[test]
fn golden_theta_ior_read() {
    let (profile, storage) = theta(LustreTunables::theta_optimized());
    let n = THETA_NODES * RPN;
    check(
        &Golden {
            name: "theta/ior/read",
            aggregators: 48,
            buffer: 4 * MIB,
            strategy: PlacementStrategy::TopologyAware,
            pipelining: true,
            tier: TierAssignment::McdramDirect,
        },
        &profile,
        &storage,
        &ior(n, MIB, AccessMode::Read),
    );
}

#[test]
fn golden_theta_hacc_write() {
    let (profile, storage) = theta(LustreTunables::theta_hacc());
    let n = THETA_NODES * RPN;
    check(
        &Golden {
            name: "theta/hacc/write",
            aggregators: 96,
            buffer: 16 * MIB,
            strategy: PlacementStrategy::TopologyAware,
            pipelining: true,
            tier: TierAssignment::DramDirect,
        },
        &profile,
        &storage,
        &hacc(n, MIB, AccessMode::Write),
    );
}

#[test]
fn golden_theta_hacc_read() {
    let (profile, storage) = theta(LustreTunables::theta_hacc());
    let n = THETA_NODES * RPN;
    check(
        &Golden {
            name: "theta/hacc/read",
            aggregators: 24,
            buffer: 8 * MIB,
            strategy: PlacementStrategy::TopologyAware,
            pipelining: true,
            tier: TierAssignment::McdramDirect,
        },
        &profile,
        &storage,
        &hacc(n, MIB, AccessMode::Read),
    );
}

/// SplitMix64 — the workspace has no external RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// The property the whole subsystem promises: on *any* workload, the
/// tuned configuration is at least as fast (simulated) as the paper's
/// rule-based hand-tuning — because the rule-based config is always in
/// the confirmed short-list. Exercised on 8 seeded variations per
/// machine (varying rank count, per-rank size, mode, and workload
/// shape) plus run-to-run determinism on each.
#[test]
fn tuned_never_loses_to_rule_based_across_seeded_variations() {
    for seed in 0..8u64 {
        let mut rng = Rng(0x601d ^ seed.wrapping_mul(0x9e37_79b9)); // per-seed stream
        let per_rank = (64 + rng.next() % 1984) * 1024; // 64 KiB .. ~2 MiB
        let mode = if rng.next().is_multiple_of(2) { AccessMode::Write } else { AccessMode::Read };
        let hacc_shape = rng.next().is_multiple_of(2);

        // Theta variation.
        let tn = 16 * (1 + (rng.next() % 8) as usize); // 16..128 ranks (fits the profile)
        let (tp, ts) = theta(LustreTunables::theta_optimized());
        let tspec = if hacc_shape { hacc(tn, per_rank, mode) } else { ior(tn, per_rank, mode) };
        let a = autotune(&tp, &ts, &tspec).unwrap();
        assert!(
            a.tuned_bandwidth >= a.rule_bandwidth,
            "theta seed {seed}: tuned {} < rule {}",
            a.tuned_bandwidth,
            a.rule_bandwidth
        );
        let a2 = autotune(&tp, &ts, &tspec).unwrap();
        assert_eq!(a.best, a2.best, "theta seed {seed}: non-deterministic tuning");

        // Mira variation (Pset-shaped group).
        let mn = 128 * (1 + (rng.next() % 3) as usize); // 128..384 ranks
        let (mp, ms) = mira();
        let mspec = if hacc_shape { hacc(mn, per_rank, mode) } else { ior(mn, per_rank, mode) };
        let b = autotune(&mp, &ms, &mspec).unwrap();
        assert!(
            b.tuned_bandwidth >= b.rule_bandwidth,
            "mira seed {seed}: tuned {} < rule {}",
            b.tuned_bandwidth,
            b.rule_bandwidth
        );
        let b2 = autotune(&mp, &ms, &mspec).unwrap();
        assert_eq!(b.best, b2.best, "mira seed {seed}: non-deterministic tuning");
    }
}
