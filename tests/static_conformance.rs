//! Conformance bridge cross-validation: every dynamic trace either
//! executor produces must be a linearization of the statically derived
//! schedule (`tapioca::analyze::derive_symbolic` +
//! `tapioca_check::static_::conformance`).
//!
//! Covered here:
//! * the PR-2 suite configs (hacc-soa/hacc-aos/ior/ior-nopipe), both
//!   executors;
//! * fault-laden runs (aggregator crash, flaky flushes, stall →
//!   degrade), both executors;
//! * ≥16 schedule-perturbation seeds in thread mode;
//! * tampered traces, asserting the bridge reports the exact
//!   divergence class (unmapped / undischarged / order).

use std::sync::Arc;

use tapioca::analyze::{derive_symbolic, StaticViolation, SymbolicSchedule};
use tapioca::prelude::*;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_check::static_::{conformance, conformance_as, detect_executor, Executor};
use tapioca_mpi::{FaultPlan, FaultSpec, Runtime, SharedFile};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MachineProfile, TopologyProvider};
use tapioca_trace::{Trace, TraceOp, Tracer};
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-static-conf");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

fn spec_of(decls: &[Vec<WriteDecl>]) -> CollectiveSpec {
    CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..decls.len()).collect(),
            decls: decls.to_vec(),
        }],
        mode: AccessMode::Write,
    }
}

fn sim_trace(profile: &MachineProfile, decls: &[Vec<WriteDecl>], cfg: &TapiocaConfig) -> Trace {
    let tracer = Tracer::new(profile.machine.num_ranks());
    let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg.clone() };
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    run_tapioca_sim(profile, &storage, &spec_of(decls), &cfg).unwrap();
    tracer.drain()
}

fn thread_trace(
    name: &str,
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
    perturb: Option<u64>,
) -> Trace {
    let n = decls.len();
    let tracer = Tracer::new(profile.machine.num_ranks());
    let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg.clone() };
    let machine = Arc::new(profile.machine.clone());
    let path = tmp(name);
    let decls = decls.to_vec();
    let path2 = path.clone();
    let body = move |comm: tapioca_mpi::Comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let r = comm.rank();
        let mine = decls[r].clone();
        let mut io = Session::builder(&comm, file)
            .declarations(mine.clone())
            .config(cfg.clone())
            .topology(machine.clone())
            .build()
            .unwrap();
        for d in &mine {
            io.write(d.offset, &vec![0xC3u8; d.len as usize]).unwrap();
        }
        io.finalize();
    };
    match perturb {
        Some(seed) => {
            Runtime::run_perturbed(n, seed, body);
        }
        None => {
            Runtime::run(n, body);
        }
    }
    std::fs::remove_file(&path).ok();
    tracer.drain()
}

fn symbolic(
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
) -> SymbolicSchedule {
    derive_symbolic(profile, &spec_of(decls), cfg).unwrap()
}

/// Assert both executors' traces linearize the static schedule.
fn assert_conformant(
    name: &str,
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
) {
    let sym = symbolic(profile, decls, cfg);
    assert!(sym.total_bytes() > 0, "{name}: static schedule moves no bytes");

    let sim = sim_trace(profile, decls, cfg);
    assert_eq!(detect_executor(&sim), Executor::Sim, "{name}: sim trace misdetected");
    let v = conformance(&sym, &sim);
    assert!(v.is_empty(), "{name}: sim trace diverges: {}", render(&v));

    let thread = thread_trace(name, profile, decls, cfg, None);
    assert_eq!(detect_executor(&thread), Executor::Thread, "{name}: thread trace misdetected");
    let v = conformance(&sym, &thread);
    assert!(v.is_empty(), "{name}: thread trace diverges: {}", render(&v));
}

fn render(v: &[StaticViolation]) -> String {
    v.iter().take(8).map(|x| x.to_string()).collect::<Vec<_>>().join("; ")
}

// ---- the PR-2 suite, both executors ------------------------------------

#[test]
fn hacc_soa_conforms() {
    let profile = theta_profile(8, 2);
    let w = HaccIo { num_ranks: 16, particles_per_rank: 100, layout: Layout::StructOfArrays };
    let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 2048, ..Default::default() };
    assert_conformant("hacc-soa", &profile, &w.decls(), &cfg);
}

#[test]
fn hacc_aos_conforms() {
    let profile = theta_profile(4, 4);
    let w = HaccIo { num_ranks: 16, particles_per_rank: 80, layout: Layout::ArrayOfStructs };
    let cfg = TapiocaConfig { num_aggregators: 3, buffer_size: 1536, ..Default::default() };
    assert_conformant("hacc-aos", &profile, &w.decls(), &cfg);
}

#[test]
fn ior_conforms() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 4096 };
    let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 1024, ..Default::default() };
    assert_conformant("ior", &profile, &w.decls(), &cfg);
}

#[test]
fn ior_unpipelined_conforms() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 2000 };
    let cfg = TapiocaConfig {
        num_aggregators: 2,
        buffer_size: 512,
        pipelining: false,
        ..Default::default()
    };
    assert_conformant("ior-nopipe", &profile, &w.decls(), &cfg);
}

// ---- coalesced data plane ----------------------------------------------

#[test]
fn coalesced_runs_conform() {
    // With coalescing on, the thread trace carries merged puts
    // (`coalesced >= 2`) on node-leader lanes; the bridge matches them
    // against the schedule's wire-level view and must still fully
    // discharge it.
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 512 };
    let cfg = TapiocaConfig {
        num_aggregators: 2,
        buffer_size: 2048,
        coalescing: true,
        ..Default::default()
    };
    let sym = symbolic(&profile, &w.decls(), &cfg);
    let merged: usize = sym
        .groups
        .iter()
        .flat_map(|g| &g.partitions)
        .flat_map(|p| &p.rounds)
        .flat_map(|r| &r.wire_puts)
        .filter(|p| p.coalesced >= 2)
        .count();
    assert!(merged > 0, "the wire view must predict merged puts");
    assert_conformant("ior-coalesced", &profile, &w.decls(), &cfg);

    let thread = thread_trace("ior-coalesced-t", &profile, &w.decls(), &cfg, None);
    let observed = thread
        .events()
        .iter()
        .filter(|e| e.op == TraceOp::RmaPut && e.coalesced >= 2)
        .count();
    assert_eq!(observed, merged, "every predicted merged put must be observed");
}

#[test]
fn coalesced_crash_recovery_conforms() {
    // The crash round replays merged runs from the surviving gather
    // buffers: the wire view predicts both the doomed fill and the
    // slot-0 replay copy of each merged put.
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 512 };
    let faults = FaultPlan::seeded(11)
        .with(FaultSpec::AggregatorCrash { partition: 1, round: 1 });
    let cfg = TapiocaConfig {
        num_aggregators: 2,
        buffer_size: 1024,
        coalescing: true,
        faults: Some(faults),
        ..Default::default()
    };
    let sym = symbolic(&profile, &w.decls(), &cfg);
    let replayed_merged: usize = sym
        .groups
        .iter()
        .flat_map(|g| &g.partitions)
        .flat_map(|p| &p.rounds)
        .flat_map(|r| &r.wire_puts)
        .filter(|p| p.coalesced >= 2 && p.replay)
        .count();
    assert!(replayed_merged > 0, "the crash round must replay a merged put");
    assert_conformant("ior-coalesced-crash", &profile, &w.decls(), &cfg);
}

#[test]
fn coalesced_perturbation_seeds_conform() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 512 };
    let cfg = TapiocaConfig {
        num_aggregators: 2,
        buffer_size: 2048,
        coalescing: true,
        ..Default::default()
    };
    let sym = symbolic(&profile, &w.decls(), &cfg);
    for seed in 0..8u64 {
        let t = thread_trace("perturb-coalesced", &profile, &w.decls(), &cfg, Some(seed));
        let v = conformance_as(&sym, &t, Executor::Thread);
        assert!(v.is_empty(), "coalesced seed {seed}: {}", render(&v));
    }
}

// ---- fault-laden runs --------------------------------------------------

#[test]
fn crash_recovery_conforms() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 4096 };
    let faults = FaultPlan::seeded(11)
        .with(FaultSpec::AggregatorCrash { partition: 1, round: 1 });
    let cfg = TapiocaConfig {
        num_aggregators: 4,
        buffer_size: 1024,
        faults: Some(faults),
        ..Default::default()
    };
    let sym = symbolic(&profile, &w.decls(), &cfg);
    let crashed: Vec<_> = sym
        .groups
        .iter()
        .flat_map(|g| &g.partitions)
        .filter(|p| p.crash.is_some())
        .collect();
    assert_eq!(crashed.len(), 1, "the crash must compile to exactly one partition");
    assert_conformant("ior-crash", &profile, &w.decls(), &cfg);
}

#[test]
fn flaky_flush_conforms() {
    let profile = theta_profile(8, 2);
    let w = HaccIo { num_ranks: 16, particles_per_rank: 100, layout: Layout::StructOfArrays };
    let faults = FaultPlan::seeded(7)
        .with(FaultSpec::TransientFlushError { probability: 0.4 });
    let cfg = TapiocaConfig {
        num_aggregators: 4,
        buffer_size: 2048,
        faults: Some(faults),
        ..Default::default()
    };
    let sym = symbolic(&profile, &w.decls(), &cfg);
    let retries: u32 = sym
        .groups
        .iter()
        .flat_map(|g| &g.partitions)
        .flat_map(|p| &p.rounds)
        .flat_map(|r| &r.flushes)
        .map(|s| s.fail_attempts)
        .sum();
    assert!(retries > 0, "the flaky plan must predict at least one retry");
    assert_conformant("hacc-flaky", &profile, &w.decls(), &cfg);
}

#[test]
fn stall_degrade_conforms() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 4096 };
    let faults =
        FaultPlan::seeded(3).with(FaultSpec::FlushStall { partition: 0, round: 1 });
    let cfg = TapiocaConfig {
        num_aggregators: 4,
        buffer_size: 1024,
        faults: Some(faults),
        ..Default::default()
    };
    let sym = symbolic(&profile, &w.decls(), &cfg);
    let degraded: Vec<_> = sym
        .groups
        .iter()
        .flat_map(|g| &g.partitions)
        .filter(|p| p.degrade_round == Some(1))
        .collect();
    assert_eq!(degraded.len(), 1, "the stall must degrade exactly partition 0");
    assert_conformant("ior-stall", &profile, &w.decls(), &cfg);
}

// ---- perturbed schedules -----------------------------------------------

#[test]
fn sixteen_perturbation_seeds_conform() {
    let profile = theta_profile(8, 2);
    let ior = IorSpec { num_ranks: 16, bytes_per_rank: 2048 };
    let hacc = HaccIo { num_ranks: 16, particles_per_rank: 40, layout: Layout::StructOfArrays };
    let ior_cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 1024, ..Default::default() };
    let hacc_cfg = TapiocaConfig { num_aggregators: 3, buffer_size: 1024, ..Default::default() };
    let ior_sym = symbolic(&profile, &ior.decls(), &ior_cfg);
    let hacc_sym = symbolic(&profile, &hacc.decls(), &hacc_cfg);
    for seed in 0..8u64 {
        let t = thread_trace("perturb-ior", &profile, &ior.decls(), &ior_cfg, Some(seed));
        let v = conformance_as(&ior_sym, &t, Executor::Thread);
        assert!(v.is_empty(), "ior seed {seed}: {}", render(&v));
        let t = thread_trace("perturb-hacc", &profile, &hacc.decls(), &hacc_cfg, Some(seed));
        let v = conformance_as(&hacc_sym, &t, Executor::Thread);
        assert!(v.is_empty(), "hacc seed {seed}: {}", render(&v));
    }
}

// ---- tampered traces must be rejected with the right class -------------

fn tampered(base: &Trace, mutate: impl Fn(&mut Vec<tapioca_trace::TraceEvent>)) -> Trace {
    let mut events = base.events().to_vec();
    mutate(&mut events);
    Trace::from_events(events)
}

#[test]
fn tampering_is_detected_with_the_right_class() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 4096 };
    let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 1024, ..Default::default() };
    let sym = symbolic(&profile, &w.decls(), &cfg);
    let clean = thread_trace("tamper-base", &profile, &w.decls(), &cfg, None);
    assert!(conformance(&sym, &clean).is_empty());

    // A put whose bytes were corrupted no longer maps, and its static
    // counterpart stays undischarged.
    let t = tampered(&clean, |ev| {
        if let Some(e) = ev.iter_mut().find(|e| e.op == TraceOp::RmaPut) {
            e.bytes += 1;
        }
    });
    let v = conformance(&sym, &t);
    assert!(
        v.iter().any(|x| x.code() == "unmapped-dynamic-event"),
        "corrupted put must be unmapped: {}",
        render(&v)
    );
    assert!(
        v.iter().any(|x| x.code() == "undischarged-static-event"),
        "its twin must stay undischarged: {}",
        render(&v)
    );

    // Dropping a flush leaves a static event undischarged.
    let t = tampered(&clean, |ev| {
        if let Some(i) = ev.iter().position(|e| e.op == TraceOp::Flush) {
            ev.remove(i);
        }
    });
    let v = conformance(&sym, &t);
    assert!(
        v.iter().any(|x| x.code() == "undischarged-static-event"),
        "dropped flush must be undischarged: {}",
        render(&v)
    );

    // Relabelling a fence breaks the static fence-label sequence.
    let t = tampered(&clean, |ev| {
        if let Some(e) = ev.iter_mut().find(|e| e.op == TraceOp::Fence) {
            e.round += 1;
        }
    });
    let v = conformance(&sym, &t);
    assert!(
        v.iter().any(|x| x.code() == "order-violation"),
        "relabelled fence must break collective order: {}",
        render(&v)
    );

    // An invented partition index maps nowhere.
    let t = tampered(&clean, |ev| {
        if let Some(e) = ev.iter_mut().find(|e| e.op == TraceOp::RmaPut) {
            e.partition = 99;
        }
    });
    let v = conformance(&sym, &t);
    assert!(
        v.iter().any(
            |x| x.code() == "unmapped-dynamic-event" && x.to_string().contains("partition 99")
        ),
        "invented partition must be unmapped: {}",
        render(&v)
    );
}

#[test]
fn sim_tampering_is_detected() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 4096 };
    let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 1024, ..Default::default() };
    let sym = symbolic(&profile, &w.decls(), &cfg);
    let clean = sim_trace(&profile, &w.decls(), &cfg);
    assert!(conformance(&sym, &clean).is_empty());

    // Inflating a transfer's bytes breaks the per-round byte account.
    let t = tampered(&clean, |ev| {
        if let Some(e) = ev.iter_mut().find(|e| e.op == TraceOp::RmaPut) {
            e.bytes += 7;
        }
    });
    let v = conformance_as(&sym, &t, Executor::Sim);
    assert!(
        v.iter().any(|x| x.code() == "undischarged-static-event"),
        "inflated transfer must break the byte account: {}",
        render(&v)
    );

    // Delaying the round-0 flush past every later round breaks the
    // serialized flush order of its partition.
    let t = tampered(&clean, |ev| {
        let horizon = ev.iter().map(|e| e.t_ns).max().unwrap_or(0) + 1_000;
        if let Some(e) = ev
            .iter_mut()
            .find(|e| e.op == TraceOp::Flush && e.round == 0 && e.partition == 0)
        {
            e.t_ns = horizon;
        }
    });
    let v = conformance_as(&sym, &t, Executor::Sim);
    assert!(
        v.iter().any(|x| x.code() == "order-violation"),
        "reordered flush must violate serialization order: {}",
        render(&v)
    );
}
