//! Cross-crate integration: end-to-end byte correctness of the TAPIOCA
//! pipeline on the thread runtime, across configurations and workloads.

use tapioca::prelude::*;
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_workloads::datagen::{expected_range, verify_slice};
use tapioca_workloads::hacc::{HaccIo, Layout};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Write a dense file (rank r owns [r*per, (r+1)*per)) with seeded data
/// and verify every byte, for one configuration.
fn roundtrip_dense(name: &str, ranks: usize, per: u64, aggr: usize, buf: u64, pipelining: bool) {
    let path = tmp(name);
    let seed = 0xC0FFEE ^ per ^ aggr as u64;
    Runtime::run(ranks, |comm| {
        let file = SharedFile::open_shared(&comm, &path);
        let r = comm.rank() as u64;
        let decls = vec![WriteDecl { offset: r * per, len: per }];
        let cfg = TapiocaConfig {
            num_aggregators: aggr,
            buffer_size: buf,
            pipelining,
            strategy: PlacementStrategy::TopologyAware,
            ..Default::default()
        };
        let mut io =
            Session::builder(&comm, file).declarations(decls).config(cfg).build().unwrap();
        io.write(r * per, &expected_range(seed, r * per, per as usize)).unwrap();
        io.finalize();
    });
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes.len() as u64, ranks as u64 * per);
    assert_eq!(verify_slice(seed, 0, &bytes), None, "config {name} corrupted the file");
    std::fs::remove_file(&path).ok();
}

#[test]
fn dense_small_buffers_many_rounds() {
    roundtrip_dense("small-buf", 8, 4096, 2, 128, true);
}

#[test]
fn dense_buffer_larger_than_partition() {
    roundtrip_dense("big-buf", 4, 512, 4, 1 << 20, true);
}

#[test]
fn dense_single_aggregator() {
    roundtrip_dense("one-aggr", 6, 2048, 1, 512, true);
}

#[test]
fn dense_unpipelined() {
    roundtrip_dense("nopipe", 8, 4096, 3, 256, false);
}

#[test]
fn dense_aggregators_exceed_ranks_worth_of_data() {
    roundtrip_dense("many-aggr", 4, 256, 16, 64, true);
}

#[test]
fn odd_sizes_and_buffers() {
    // deliberately non-power-of-two everything
    roundtrip_dense("odd", 7, 999, 3, 97, true);
}

#[test]
fn hacc_both_layouts_through_tapioca() {
    for layout in [Layout::ArrayOfStructs, Layout::StructOfArrays] {
        let w = HaccIo { num_ranks: 12, particles_per_rank: 500, layout };
        let path = tmp(&format!("hacc-{layout:?}"));
        let wl = w;
        Runtime::run(w.num_ranks, |comm| {
            let file = SharedFile::open_shared(&comm, &path);
            let r = comm.rank() as u64;
            let decls = wl.decls_of_rank(r);
            let mut io = Session::builder(&comm, file)
                .declarations(decls.clone())
                .config(TapiocaConfig {
                    num_aggregators: 3,
                    buffer_size: 4096,
                    ..Default::default()
                })
                .build()
                .unwrap();
            for (v, d) in decls.iter().enumerate() {
                io.write(d.offset, &wl.payload(r, v)).unwrap();
            }
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, w.total_bytes());
        for r in 0..w.num_ranks as u64 {
            for (v, d) in w.decls_of_rank(r).iter().enumerate() {
                assert_eq!(
                    &bytes[d.offset as usize..(d.offset + d.len) as usize],
                    w.payload(r, v).as_slice(),
                    "{layout:?} rank {r} var {v}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn io_stats_match_the_schedule() {
    // The executed traffic must account for every declared byte exactly
    // once: sum of per-rank put_bytes == sum of flush_bytes == payload.
    let path = tmp("stats");
    let n = 9;
    let per = 1000u64;
    let stats = Runtime::run(n, |comm| {
        let file = SharedFile::open_shared(&comm, &path);
        let r = comm.rank() as u64;
        let decls = vec![WriteDecl { offset: r * per, len: per }];
        let mut io = Session::builder(&comm, file)
            .declarations(decls)
            .config(TapiocaConfig {
                num_aggregators: 3,
                buffer_size: 512,
                ..Default::default()
            })
            .build()
            .unwrap();
        io.write(r * per, &expected_range(5, r * per, per as usize)).unwrap();
        let s = *io.stats().expect("flushed");
        io.finalize();
        s
    });
    let mut total = tapioca::aggregation::IoStats::default();
    for s in &stats {
        total.merge(s);
    }
    assert_eq!(total.put_bytes, n as u64 * per, "every byte put exactly once");
    assert_eq!(total.flush_bytes, n as u64 * per, "every byte flushed exactly once");
    assert_eq!(total.elected, 3, "one aggregator elected per partition");
    assert!(total.puts >= n as u64, "at least one put per rank");
    // each member passes two fences per round of each of its partitions
    assert!(total.fences > 0 && total.fences % 2 == 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn write_then_two_phase_read_roundtrip() {
    let path = tmp("w-then-r");
    Runtime::run(10, |comm| {
        let file = SharedFile::open_shared(&comm, &path);
        let r = comm.rank() as u64;
        let per = 700u64;
        let decls = vec![WriteDecl { offset: r * per, len: per }];
        let mut io = Session::builder(&comm, file)
            .declarations(decls)
            .config(TapiocaConfig {
                num_aggregators: 4,
                buffer_size: 333,
                ..Default::default()
            })
            .build()
            .unwrap();
        let payload = expected_range(7, r * per, per as usize);
        io.write(r * per, &payload).unwrap();
        let back = io.read_declared().unwrap();
        assert_eq!(back[0], payload);
        io.finalize();
    });
    std::fs::remove_file(&path).ok();
}

#[test]
fn repeated_operations_on_one_communicator() {
    // several init/write epochs back-to-back must not cross-talk
    let paths: Vec<_> = (0..3).map(|i| tmp(&format!("epoch-{i}"))).collect();
    let paths2 = paths.clone();
    Runtime::run(6, move |comm| {
        for (epoch, path) in paths2.iter().enumerate() {
            let file = SharedFile::open_shared(&comm, path);
            let r = comm.rank() as u64;
            let per = 256 + 64 * epoch as u64;
            let decls = vec![WriteDecl { offset: r * per, len: per }];
            let mut io = Session::builder(&comm, file)
                .declarations(decls)
                .config(TapiocaConfig {
                    num_aggregators: 2 + epoch,
                    buffer_size: 128,
                    ..Default::default()
                })
                .build()
                .unwrap();
            io.write(r * per, &expected_range(epoch as u64, r * per, per as usize)).unwrap();
            io.finalize();
        }
    });
    for (epoch, path) in paths.iter().enumerate() {
        let bytes = std::fs::read(path).unwrap();
        assert_eq!(verify_slice(epoch as u64, 0, &bytes), None, "epoch {epoch}");
        std::fs::remove_file(path).ok();
    }
}

mod props {
    //! Property-style sweep with deterministic seeds: any mix of
    //! per-rank sizes, aggregator counts and buffer sizes round-trips
    //! byte-exactly through the full pipeline. Each case is fully
    //! determined by its seed, so a failure message names a seed that
    //! reproduces it exactly.

    use super::*;
    use tapioca_workloads::datagen::SplitMix64;

    #[test]
    fn prop_pipeline_roundtrips_seeded_sweep() {
        for seed in 0u64..12 {
            let mut rng = SplitMix64::new(0x5EED_0000 + seed);
            let n = rng.range_usize(2, 8);
            let sizes: Vec<u64> = (0..n).map(|_| rng.range_u64(1, 2000)).collect();
            let aggr = rng.range_usize(1, 6);
            let buf = rng.range_u64(32, 700);
            let pipelining = rng.bool();

            let offsets: Vec<u64> = sizes
                .iter()
                .scan(0u64, |acc, s| {
                    let o = *acc;
                    *acc += s;
                    Some(o)
                })
                .collect();
            let total: u64 = sizes.iter().sum();
            let path = tmp(&format!("prop-{seed}"));
            let (sizes2, offsets2, path2) = (sizes.clone(), offsets.clone(), path.clone());
            Runtime::run(n, move |comm| {
                let file = SharedFile::open_shared(&comm, &path2);
                let r = comm.rank();
                let decls = vec![WriteDecl { offset: offsets2[r], len: sizes2[r] }];
                let mut io = Session::builder(&comm, file)
                    .declarations(decls)
                    .config(TapiocaConfig {
                        num_aggregators: aggr,
                        buffer_size: buf,
                        pipelining,
                        ..Default::default()
                    })
                    .build()
                    .unwrap();
                io.write(offsets2[r], &expected_range(99, offsets2[r], sizes2[r] as usize))
                    .unwrap();
                io.finalize();
            });
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(
                bytes.len() as u64,
                total,
                "seed {seed}: n={n} sizes={sizes:?} aggr={aggr} buf={buf} pipelining={pipelining}"
            );
            assert_eq!(
                verify_slice(99, 0, &bytes),
                None,
                "seed {seed}: n={n} sizes={sizes:?} aggr={aggr} buf={buf} pipelining={pipelining}"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}
