//! Scale-level simulation invariants: the properties the figures rely on
//! must hold structurally, at sizes small enough for CI.

use tapioca::config::TapiocaConfig;
use tapioca::placement::PlacementStrategy;
use tapioca::schedule::WriteDecl;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_baseline::romio::MpiIoConfig;
use tapioca_baseline::sim::run_mpiio_sim;
use tapioca_pfs::{AccessMode, GpfsTunables, LustreTunables};
use tapioca_topology::{mira_profile, theta_profile, MIB};
use tapioca_workloads::hacc::{HaccIo, Layout};

fn ior_theta_spec(nranks: usize, per: u64, mode: AccessMode) -> CollectiveSpec {
    CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..nranks).collect(),
            decls: (0..nranks as u64)
                .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                .collect(),
        }],
        mode,
    }
}

fn mira_pset_spec(nodes: usize, rpn: usize, per: u64) -> CollectiveSpec {
    let rpp = 128 * rpn;
    let groups = (0..nodes / 128)
        .map(|p| GroupSpec {
            file: p,
            ranks: (p * rpp..(p + 1) * rpp).collect(),
            decls: (0..rpp as u64)
                .map(|r| vec![WriteDecl { offset: r * per, len: per }])
                .collect(),
        })
        .collect();
    CollectiveSpec { groups, mode: AccessMode::Write }
}

#[test]
fn fig8_mechanism_striping_dominates() {
    // 48 OSTs vs 1 OST is the main axis of Fig. 8.
    let profile = theta_profile(64, 4);
    let spec = ior_theta_spec(256, MIB, AccessMode::Write);
    let cb = MpiIoConfig { cb_aggregators: 16, cb_buffer_size: 8 * MIB };
    let tuned = run_mpiio_sim(
        &profile,
        &StorageConfig::Lustre(LustreTunables::theta_optimized()),
        &spec,
        &cb,
    )
    .unwrap();
    let dflt = run_mpiio_sim(
        &profile,
        &StorageConfig::Lustre(LustreTunables::theta_default()),
        &spec,
        &cb,
    )
    .unwrap();
    assert!(tuned.bandwidth > 5.0 * dflt.bandwidth, "striping gain must be large");
}

#[test]
fn fig8_mechanism_reads_beat_writes_when_tuned() {
    let profile = theta_profile(64, 4);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    let cb = MpiIoConfig { cb_aggregators: 16, cb_buffer_size: 8 * MIB };
    let w = run_mpiio_sim(&profile, &storage, &ior_theta_spec(256, MIB, AccessMode::Write), &cb)
        .unwrap();
    let r = run_mpiio_sim(&profile, &storage, &ior_theta_spec(256, MIB, AccessMode::Read), &cb)
        .unwrap();
    assert!(r.bandwidth > w.bandwidth);
}

#[test]
fn fig7_mechanism_lock_mode_hits_writes_not_reads() {
    let profile = mira_profile(128, 4);
    let spec_w = mira_pset_spec(128, 4, MIB);
    let mut spec_r = spec_w.clone();
    spec_r.mode = AccessMode::Read;
    let cb = MpiIoConfig { cb_aggregators: 16, cb_buffer_size: 16 * MIB };
    let opt = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let dft = StorageConfig::Gpfs(GpfsTunables::mira_default());
    let w_opt = run_mpiio_sim(&profile, &opt, &spec_w, &cb).unwrap();
    let w_dft = run_mpiio_sim(&profile, &dft, &spec_w, &cb).unwrap();
    let r_opt = run_mpiio_sim(&profile, &opt, &spec_r, &cb).unwrap();
    let r_dft = run_mpiio_sim(&profile, &dft, &spec_r, &cb).unwrap();
    assert!(w_opt.bandwidth / w_dft.bandwidth > 1.8, "write tuning gain");
    let read_gain = r_opt.bandwidth / r_dft.bandwidth;
    assert!((0.9..1.4).contains(&read_gain), "reads nearly unaffected, got {read_gain}");
}

#[test]
fn table1_mechanism_one_to_one_is_local_peak() {
    let profile = theta_profile(64, 4);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized()); // 8 MiB stripes
    let spec = ior_theta_spec(256, 4 * MIB, AccessMode::Write);
    let bw = |buffer: u64| {
        run_tapioca_sim(&profile, &storage, &spec, &TapiocaConfig {
            num_aggregators: 24,
            buffer_size: buffer,
            ..Default::default()
        })
        .unwrap()
        .bandwidth
    };
    let half = bw(4 * MIB);
    let one = bw(8 * MIB);
    let twice = bw(16 * MIB);
    assert!(one > half, "1:1 beats 1:2 ({one} vs {half})");
    assert!(one > twice, "1:1 beats 2:1 ({one} vs {twice})");
}

#[test]
fn fig11_mechanism_multivar_gap_exceeds_single_var_gap() {
    let profile = mira_profile(128, 4);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let ratio = |layout| {
        let w = HaccIo { num_ranks: 512, particles_per_rank: 8_000, layout };
        let spec = CollectiveSpec {
            groups: vec![GroupSpec { file: 0, ranks: (0..512).collect(), decls: w.decls() }],
            mode: AccessMode::Write,
        };
        let t = run_tapioca_sim(&profile, &storage, &spec, &TapiocaConfig {
            num_aggregators: 16,
            buffer_size: 4 * MIB,
            ..Default::default()
        })
        .unwrap();
        let b = run_mpiio_sim(&profile, &storage, &spec, &MpiIoConfig {
            cb_aggregators: 16,
            cb_buffer_size: 4 * MIB,
        })
        .unwrap();
        t.bandwidth / b.bandwidth
    };
    let soa = ratio(Layout::StructOfArrays);
    let aos = ratio(Layout::ArrayOfStructs);
    assert!(soa > aos, "SoA speedup {soa:.2} must exceed AoS {aos:.2}");
    assert!(aos >= 1.0, "TAPIOCA never loses on AoS");
}

#[test]
fn placement_strategies_ordering_under_cost_model() {
    // Worst-case placement can never beat the cost-model election.
    let profile = mira_profile(128, 4);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let spec = mira_pset_spec(128, 4, MIB / 2);
    let run = |strategy| {
        run_tapioca_sim(&profile, &storage, &spec, &TapiocaConfig {
            num_aggregators: 8,
            buffer_size: MIB,
            strategy,
            ..Default::default()
        })
        .unwrap()
        .elapsed
    };
    let ta = run(PlacementStrategy::TopologyAware);
    let worst = run(PlacementStrategy::WorstCase);
    assert!(ta <= worst * 1.0001, "topology-aware {ta} must not lose to worst-case {worst}");
}

#[test]
fn subfiling_groups_run_concurrently() {
    // 2 Psets writing 2 subfiles should take roughly the time of 1, not 2x.
    let profile = mira_profile(256, 4);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let one = mira_pset_spec(128, 4, MIB); // note: 128-node machine spec below
    let profile_one = mira_profile(128, 4);
    let cfg = TapiocaConfig { num_aggregators: 8, buffer_size: 8 * MIB, ..Default::default() };
    let t1 = run_tapioca_sim(&profile_one, &storage, &one, &cfg).unwrap().elapsed;
    let two = mira_pset_spec(256, 4, MIB);
    let t2 = run_tapioca_sim(&profile, &storage, &two, &cfg).unwrap().elapsed;
    assert!(t2 < 1.5 * t1, "two Psets in parallel ({t2:.3}s) vs one ({t1:.3}s)");
}
