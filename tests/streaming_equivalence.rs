//! Streaming/staged equivalence: the round-incremental write path of
//! [`Session`] must be observationally identical to the batch-staged
//! pipeline (`run_write_pipeline`) it replaced.
//!
//! Covered here, on the mira/theta x ior/hacc grid the paper evaluates:
//! * file bytes bit-identical between a streamed session and a staged
//!   replay of the same workload through `run_write_pipeline`;
//! * any per-rank `write()` issue order produces the same file (late
//!   bytes are staged into pending buffers, never reordered on disk);
//! * epoch reuse is deterministic: a reused session produces the same
//!   per-epoch stats and the same final bytes as a fresh one;
//! * (with the `trace` feature) streamed traces — including per-epoch
//!   traces of a reused session, faulty runs, and perturbed
//!   interleavings — satisfy every checker invariant unchanged.

use tapioca::aggregation::run_write_pipeline;
use tapioca::prelude::*;
use tapioca::schedule::{compute_schedule, ScheduleParams};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_topology::{mira_profile, theta_profile, MachineProfile, TopologyProvider};
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

use std::sync::Arc;

const NRANKS: usize = 16;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-streaming-eq");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Recognisable payload: a function of (rank, var, byte index, epoch).
fn payload(rank: usize, var: usize, len: u64, epoch: u64) -> Vec<u8> {
    (0..len).map(|i| (rank as u64 * 131 + var as u64 * 17 + i * 3 + epoch * 59) as u8).collect()
}

/// The evaluation grid: both machines x both workloads.
fn grid() -> Vec<(&'static str, MachineProfile, Vec<Vec<WriteDecl>>)> {
    let ior = IorSpec { num_ranks: NRANKS, bytes_per_rank: 4096 }.decls();
    let hacc =
        HaccIo { num_ranks: NRANKS, particles_per_rank: 100, layout: Layout::StructOfArrays }
            .decls();
    vec![
        ("mira-ior", mira_profile(128, 4), ior.clone()),
        ("mira-hacc", mira_profile(128, 4), hacc.clone()),
        ("theta-ior", theta_profile(8, 2), ior),
        ("theta-hacc", theta_profile(8, 2), hacc),
    ]
}

fn base_cfg() -> TapiocaConfig {
    TapiocaConfig { num_aggregators: 4, buffer_size: 2048, ..Default::default() }
}

/// Run a streamed session over `decls`, issuing each rank's writes in
/// the order given by `order(rank, ndecls)`, and return the file bytes.
fn streamed_bytes(
    name: &str,
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
    order: impl Fn(usize, usize) -> Vec<usize> + Send + Sync,
) -> Vec<u8> {
    let path = tmp(name);
    let machine = Arc::new(profile.machine.clone());
    let decls = decls.to_vec();
    let path2 = path.clone();
    let cfg = cfg.clone();
    Runtime::run(decls.len(), move |comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let r = comm.rank();
        let mine = decls[r].clone();
        let mut io = Session::builder(&comm, file)
            .declarations(mine.clone())
            .config(cfg.clone())
            .topology(machine.clone())
            .build()
            .unwrap();
        for v in order(r, mine.len()) {
            io.write(mine[v].offset, &payload(r, v, mine[v].len, 0)).unwrap();
        }
        io.finalize();
    });
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Replay the same workload through the batch-staged pipeline and
/// return the file bytes — the pre-streaming reference behaviour.
fn staged_bytes(
    name: &str,
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
) -> Vec<u8> {
    let path = tmp(name);
    let machine = Arc::new(profile.machine.clone());
    let schedule = compute_schedule(decls, ScheduleParams {
        num_aggregators: cfg.num_aggregators,
        buffer_size: cfg.buffer_size,
        align_to_buffer: true,
    });
    let decls = decls.to_vec();
    let path2 = path.clone();
    let cfg = cfg.clone();
    Runtime::run(decls.len(), move |comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let r = comm.rank();
        let staged: Vec<Vec<u8>> =
            decls[r].iter().enumerate().map(|(v, d)| payload(r, v, d.len, 0)).collect();
        let epoch = comm.next_user_seq() * 2;
        run_write_pipeline(&comm, &schedule, &staged, &file, &cfg, machine.as_ref(), epoch)
            .unwrap();
    });
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn streamed_and_staged_files_are_bit_identical_across_the_grid() {
    for (name, profile, decls) in grid() {
        let cfg = base_cfg();
        let streamed =
            streamed_bytes(&format!("{name}-str"), &profile, &decls, &cfg, |_, n| (0..n).collect());
        let staged = staged_bytes(&format!("{name}-stg"), &profile, &decls, &cfg);
        assert_eq!(streamed.len(), staged.len(), "{name}: file lengths differ");
        assert!(streamed == staged, "{name}: streamed file diverges from staged reference");
    }
}

#[test]
fn any_write_issue_order_produces_the_same_file() {
    // hacc-soa has 9 declared writes per rank — enough permutations to
    // exercise the pending-buffer staging path hard.
    let profile = theta_profile(8, 2);
    let decls = HaccIo { num_ranks: NRANKS, particles_per_rank: 100, layout: Layout::StructOfArrays }
        .decls();
    let cfg = base_cfg();
    let reference =
        streamed_bytes("order-ref", &profile, &decls, &cfg, |_, n| (0..n).collect());
    type IssueOrder = Box<dyn Fn(usize, usize) -> Vec<usize> + Send + Sync>;
    let orders: Vec<(&str, IssueOrder)> = vec![
        ("reversed", Box::new(|_, n| (0..n).rev().collect())),
        ("evens-then-odds", Box::new(|_, n| {
            (0..n).step_by(2).chain((1..n).step_by(2)).collect()
        })),
        ("rank-rotated", Box::new(|r, n| (0..n).map(|v| (v + r) % n).collect())),
    ];
    for (label, order) in orders {
        let got = streamed_bytes(&format!("order-{label}"), &profile, &decls, &cfg, order);
        assert!(got == reference, "issue order {label} changed the file bytes");
    }
}

#[test]
fn reused_session_epochs_are_deterministic() {
    let path = tmp("epochs");
    let per = 1500u64;
    const EPOCHS: u64 = 3;
    let path2 = path.clone();
    let all_stats = Runtime::run(6, move |comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let r = comm.rank();
        let decls = vec![WriteDecl { offset: r as u64 * per, len: per }];
        let mut io = Session::builder(&comm, file)
            .declarations(decls)
            .config(TapiocaConfig { num_aggregators: 2, buffer_size: 512, ..Default::default() })
            .build()
            .unwrap();
        let mut stats = Vec::new();
        for epoch in 0..EPOCHS {
            // same payload every epoch except the last, so the final
            // bytes pin which epoch's data landed
            let e = if epoch == EPOCHS - 1 { 1 } else { 0 };
            io.write(r as u64 * per, &payload(r, 0, per, e)).unwrap();
            stats.push(*io.stats().unwrap());
        }
        assert_eq!(io.epochs_completed(), EPOCHS);
        io.finalize();
        stats
    });
    // every epoch of every rank did identical work
    for stats in &all_stats {
        for s in &stats[1..] {
            assert_eq!(s.puts, stats[0].puts, "reused epochs diverge in puts");
            assert_eq!(s.put_bytes, stats[0].put_bytes);
            assert_eq!(s.fences, stats[0].fences);
            assert_eq!(s.flush_bytes, stats[0].flush_bytes);
            assert_eq!(s.staging_copy_bytes, stats[0].staging_copy_bytes);
        }
    }
    let bytes = std::fs::read(&path).unwrap();
    for r in 0..6usize {
        let o = r * per as usize;
        assert_eq!(
            &bytes[o..o + per as usize],
            payload(r, 0, per, 1).as_slice(),
            "rank {r}: last epoch's bytes must win"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[cfg(feature = "trace")]
mod traced {
    //! Streamed traces must satisfy the full protocol checker —
    //! including per-epoch traces of reused sessions, faulty runs, and
    //! perturbed interleavings.

    use super::*;
    use std::sync::Mutex;
    use tapioca::{FaultPlan, FaultSpec};
    use tapioca_check::check;
    use tapioca_trace::{Trace, TraceOp, Tracer};

    /// Stream the grid workload and return the trace.
    fn streamed_trace(
        name: &str,
        profile: &MachineProfile,
        decls: &[Vec<WriteDecl>],
        cfg: &TapiocaConfig,
        seed: Option<u64>,
    ) -> Trace {
        let n = decls.len();
        let tracer = Tracer::new(profile.machine.num_ranks());
        let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg.clone() };
        let machine = Arc::new(profile.machine.clone());
        let path = tmp(name);
        let decls = decls.to_vec();
        let path2 = path.clone();
        let body = move |comm: tapioca_mpi::Comm| {
            let file = SharedFile::open_shared(&comm, &path2);
            let r = comm.rank();
            let mine = decls[r].clone();
            let mut io = Session::builder(&comm, file)
                .declarations(mine.clone())
                .config(cfg.clone())
                .topology(machine.clone())
                .build()
                .unwrap();
            // issue out of order so the trace covers the staging path
            for (v, d) in mine.iter().enumerate().rev() {
                io.write(d.offset, &payload(r, v, d.len, 0)).unwrap();
            }
            io.finalize();
        };
        match seed {
            Some(s) => Runtime::run_perturbed(n, s, body),
            None => Runtime::run(n, body),
        };
        std::fs::remove_file(&path).ok();
        tracer.drain()
    }

    #[test]
    fn streamed_traces_are_checker_clean_across_the_grid() {
        for (name, profile, decls) in grid() {
            let trace = streamed_trace(&format!("tr-{name}"), &profile, &decls, &base_cfg(), None);
            assert!(
                trace.events().iter().any(|e| e.op == TraceOp::Fence),
                "{name}: expected a fenced trace"
            );
            let v = check(&trace);
            assert!(v.is_empty(), "{name}: streamed trace has violations: {v:?}");
        }
    }

    #[test]
    fn perturbed_streamed_interleavings_stay_checker_clean() {
        let profile = theta_profile(8, 2);
        let decls = IorSpec { num_ranks: NRANKS, bytes_per_rank: 4096 }.decls();
        for seed in 1..=8u64 {
            let name = format!("tr-seed-{seed}");
            let v = check(&streamed_trace(&name, &profile, &decls, &base_cfg(), Some(seed)));
            assert!(v.is_empty(), "seed {seed}: streamed trace has violations: {v:?}");
        }
    }

    #[test]
    fn each_epoch_of_a_reused_session_traces_clean() {
        // Drain the tracer at every epoch boundary (rank 0, after a
        // barrier): each per-epoch trace must be self-contained — its
        // own election events included — and checker-clean.
        let profile = theta_profile(8, 2);
        let nranks = NRANKS;
        let per = 1024u64;
        const EPOCHS: u64 = 3;
        let tracer = Tracer::new(profile.machine.num_ranks());
        let cfg = TapiocaConfig {
            num_aggregators: 4,
            buffer_size: 512,
            tracer: Some(Arc::clone(&tracer)),
            ..Default::default()
        };
        let machine = Arc::new(profile.machine.clone());
        let epoch_traces: Arc<Mutex<Vec<Trace>>> = Arc::new(Mutex::new(Vec::new()));
        let path = tmp("tr-epochs");
        let path2 = path.clone();
        let traces2 = Arc::clone(&epoch_traces);
        let tracer2 = Arc::clone(&tracer);
        Runtime::run(nranks, move |comm| {
            let file = SharedFile::open_shared(&comm, &path2);
            let r = comm.rank();
            let mut io = Session::builder(&comm, file)
                .declarations(vec![WriteDecl { offset: r as u64 * per, len: per }])
                .config(cfg.clone())
                .topology(machine.clone())
                .build()
                .unwrap();
            for epoch in 0..EPOCHS {
                io.write(r as u64 * per, &payload(r, 0, per, epoch)).unwrap();
                comm.barrier();
                if r == 0 {
                    traces2.lock().unwrap().push(tracer2.drain());
                }
                comm.barrier();
            }
            io.finalize();
        });
        std::fs::remove_file(&path).ok();
        let traces = Arc::try_unwrap(epoch_traces).unwrap().into_inner().unwrap();
        assert_eq!(traces.len(), EPOCHS as usize);
        let elect_count =
            |t: &Trace| t.events().iter().filter(|e| e.op == TraceOp::Elect).count();
        for (epoch, trace) in traces.iter().enumerate() {
            assert!(!trace.is_empty(), "epoch {epoch}: empty trace");
            assert_eq!(
                elect_count(trace),
                elect_count(&traces[0]),
                "epoch {epoch}: election events must be re-recorded per epoch"
            );
            let v = check(trace);
            assert!(v.is_empty(), "epoch {epoch}: reused-session trace has violations: {v:?}");
        }
    }

    #[test]
    fn faulty_streamed_runs_recover_and_trace_clean() {
        // Crash + flaky flushes under the streaming path: recovery must
        // still produce the fault-free bytes and a checker-clean trace.
        let profile = theta_profile(4, 2);
        let nranks = 8usize;
        let per = 256u64;
        let decls: Vec<Vec<WriteDecl>> =
            (0..nranks).map(|r| vec![WriteDecl { offset: r as u64 * per, len: per }]).collect();
        let tracer = Tracer::new(profile.machine.num_ranks());
        let cfg = TapiocaConfig {
            num_aggregators: 2,
            buffer_size: 256,
            faults: Some(
                FaultPlan::seeded(13)
                    .with(FaultSpec::AggregatorCrash { partition: 0, round: 1 })
                    .with(FaultSpec::TransientFlushError { probability: 0.3 }),
            ),
            io_policy: tapioca::IoPolicy {
                max_retries: 16,
                base_backoff: std::time::Duration::from_micros(1),
                op_timeout: std::time::Duration::from_secs(30),
            },
            tracer: Some(Arc::clone(&tracer)),
            ..Default::default()
        };
        let machine = Arc::new(profile.machine.clone());
        let path = tmp("tr-faults");
        let path2 = path.clone();
        let decls2 = decls.clone();
        Runtime::run(nranks, move |comm| {
            let file = SharedFile::open_shared(&comm, &path2);
            let r = comm.rank();
            let mine = decls2[r].clone();
            let mut io = Session::builder(&comm, file)
                .declarations(mine.clone())
                .config(cfg.clone())
                .topology(machine.clone())
                .build()
                .unwrap();
            for (v, d) in mine.iter().enumerate() {
                io.write(d.offset, &payload(r, v, d.len, 0)).unwrap();
            }
            io.finalize();
        });
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for r in 0..nranks {
            let o = r * per as usize;
            assert_eq!(
                &bytes[o..o + per as usize],
                payload(r, 0, per, 0).as_slice(),
                "rank {r}: faulty streamed run corrupted the file"
            );
        }
        let trace = tracer.drain();
        let ops: Vec<TraceOp> = trace.events().iter().map(|e| e.op).collect();
        assert!(ops.contains(&TraceOp::Crash), "trace records the crash");
        assert!(ops.contains(&TraceOp::Reelect), "trace records the re-election");
        let v = check(&trace);
        assert!(v.is_empty(), "faulty streamed trace has violations: {v:?}");
    }
}
