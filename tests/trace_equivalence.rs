//! Trace-driven cross-validation of the two executors.
//!
//! Thread mode (real threads, RMA windows, a real file) and simulation
//! mode (flow-level network simulator over an `ExecutionPlan`) run the
//! *same* schedule and election objects. Their event traces must
//! therefore agree on everything executor-independent:
//!
//! * which aggregator each partition elected,
//! * how many rounds each partition ran,
//! * how many bytes entered the aggregation buffers per round,
//! * how many bytes and segments each round flushed.
//!
//! [`Trace::structural`] projects a trace onto exactly that structure —
//! dropping timestamps (wall-clock vs simulated), `Sync` events (fences
//! have no simulation counterpart) and put granularity (thread mode
//! records one put per chunk, the simulator one per source node). The
//! contract is spelled out in DESIGN.md.
//!
//! Both modes use the same dragonfly (Theta-like) machine model, so the
//! topology-aware election computes identical costs in both executors.

use std::sync::Arc;

use tapioca::prelude::*;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MachineProfile, TopologyProvider};
use tapioca_trace::{StructuralTrace, TraceOp, Tracer};
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-trace-eq");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Run the simulator over `decls` on `profile` and return the
/// structural projection of its trace.
fn sim_structural(
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
) -> StructuralTrace {
    let tracer = Tracer::new(profile.machine.num_ranks());
    let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg.clone() };
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..decls.len()).collect(),
            decls: decls.to_vec(),
        }],
        mode: AccessMode::Write,
    };
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    run_tapioca_sim(profile, &storage, &spec, &cfg).unwrap();
    tracer.drain().structural()
}

/// Run the thread-mode pipeline over the same `decls`, against the same
/// machine model, and return the structural projection of its trace.
fn thread_structural(
    name: &str,
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
) -> StructuralTrace {
    let n = decls.len();
    let tracer = Tracer::new(profile.machine.num_ranks());
    let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg.clone() };
    let machine = Arc::new(profile.machine.clone());
    let path = tmp(name);
    let decls = decls.to_vec();
    let path2 = path.clone();
    Runtime::run(n, move |comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let r = comm.rank();
        let mine = decls[r].clone();
        let mut io = Session::builder(&comm, file)
            .declarations(mine.clone())
            .config(cfg.clone())
            .topology(machine.clone())
            .build()
            .unwrap();
        for d in &mine {
            io.write(d.offset, &vec![0xA5u8; d.len as usize]).unwrap();
        }
        io.finalize();
    });
    std::fs::remove_file(&path).ok();
    tracer.drain().structural()
}

/// Assert that both executors produce the same structure, and that the
/// structure is non-trivial (data actually moved).
fn assert_equivalent(
    name: &str,
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
) {
    assert!(
        decls.len() <= profile.machine.num_ranks(),
        "{name}: spec needs more ranks than the machine has"
    );
    let sim = sim_structural(profile, decls, cfg);
    let thread = thread_structural(name, profile, decls, cfg);
    assert!(!sim.partitions.is_empty(), "{name}: simulation trace is empty");
    for p in &sim.partitions {
        assert!(p.aggregator.is_some(), "{name}: partition {} has no election", p.partition);
    }
    assert_eq!(thread, sim, "{name}: executors disagree on collective structure");
    let total: u64 =
        sim.partitions.iter().flat_map(|p| &p.rounds).map(|r| r.aggregation_bytes).sum();
    let declared: u64 = decls.iter().flatten().map(|d| d.len).sum();
    assert_eq!(total, declared, "{name}: trace must account for every declared byte");
}

#[test]
fn hacc_soa_structures_agree() {
    // 16 ranks on 8 dragonfly nodes; 9 SoA variables per rank, buffers
    // far smaller than a variable region so partitions run many rounds.
    let profile = theta_profile(8, 2);
    let w = HaccIo { num_ranks: 16, particles_per_rank: 100, layout: Layout::StructOfArrays };
    let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 2048, ..Default::default() };
    assert_equivalent("hacc-soa", &profile, &w.decls(), &cfg);
}

#[test]
fn hacc_aos_structures_agree() {
    // Same rank count on fewer, fatter nodes; array-of-structs layout
    // gives contiguous per-rank blocks.
    let profile = theta_profile(4, 4);
    let w = HaccIo { num_ranks: 16, particles_per_rank: 80, layout: Layout::ArrayOfStructs };
    let cfg = TapiocaConfig { num_aggregators: 3, buffer_size: 1536, ..Default::default() };
    assert_equivalent("hacc-aos", &profile, &w.decls(), &cfg);
}

#[test]
fn ior_structures_agree() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 4096 };
    let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 1024, ..Default::default() };
    assert_equivalent("ior", &profile, &w.decls(), &cfg);
}

#[test]
fn ior_unpipelined_structures_agree() {
    // Pipelining changes op ordering and timing, not structure.
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 2000 };
    let cfg = TapiocaConfig {
        num_aggregators: 2,
        buffer_size: 512,
        pipelining: false,
        ..Default::default()
    };
    assert_equivalent("ior-nopipe", &profile, &w.decls(), &cfg);
}

#[test]
fn thread_trace_has_sync_events_the_structure_ignores() {
    // The raw thread trace records fences; the simulator's does not.
    // Equivalence holds *because* the structural projection drops them —
    // pin that contract here.
    let profile = theta_profile(4, 2);
    let w = IorSpec { num_ranks: 8, bytes_per_rank: 1024 };
    let cfg = TapiocaConfig { num_aggregators: 2, buffer_size: 512, ..Default::default() };

    let tracer = Tracer::new(profile.machine.num_ranks());
    let tcfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg };
    let machine = Arc::new(profile.machine.clone());
    let path = tmp("sync-events");
    let decls = w.decls();
    let path2 = path.clone();
    Runtime::run(8, move |comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let r = comm.rank();
        let mine = decls[r].clone();
        let mut io = Session::builder(&comm, file)
            .declarations(mine.clone())
            .config(tcfg.clone())
            .topology(machine.clone())
            .build()
            .unwrap();
        for d in &mine {
            io.write(d.offset, &vec![0u8; d.len as usize]).unwrap();
        }
        io.finalize();
    });
    std::fs::remove_file(&path).ok();

    let trace = tracer.drain();
    let fences = trace.events().iter().filter(|e| e.op == TraceOp::Fence).count();
    assert!(fences > 0, "thread mode must record fences");
    let summary = trace.summary();
    assert_eq!(summary.aggregation_bytes, 8 * 1024);
    assert_eq!(summary.io_bytes, 8 * 1024);
    // every byte reached exactly one aggregator's buffers
    let fill: u64 = summary.aggregator_fill_bytes.iter().map(|(_, b)| b).sum();
    assert_eq!(fill, 8 * 1024);
}
