//! Adversarial corpus for the static aggregation-plan analyzer.
//!
//! Each case constructs (or mutates into existence) a schedule with a
//! specific defect and asserts the analyzer reports exactly the
//! expected [`StaticViolation`] variant with its witness; a seeded
//! sweep then asserts clean paper-grid configs prove out with zero
//! violations. The autotune test pins the static screen: illegal grid
//! points are discarded before any simulation.

use tapioca::analyze::{
    analyze, analyze_with_capacity, derive_symbolic, StaticViolation, SymbolicSchedule,
};
use tapioca::autotune::autotune_from;
use tapioca::config::TapiocaConfig;
use tapioca::schedule::WriteDecl;
use tapioca::sim_exec::{CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_mpi::{FaultPlan, FaultSpec};
use tapioca_pfs::{AccessMode, GpfsTunables, LockMode, LustreTunables};
use tapioca_topology::{mira_profile, theta_profile, MachineProfile};
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

fn spec_of(decls: Vec<Vec<WriteDecl>>) -> CollectiveSpec {
    CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..decls.len()).collect(), decls }],
        mode: AccessMode::Write,
    }
}

fn symbolic(
    profile: &MachineProfile,
    decls: Vec<Vec<WriteDecl>>,
    cfg: &TapiocaConfig,
) -> SymbolicSchedule {
    derive_symbolic(profile, &spec_of(decls), cfg).unwrap()
}

fn d(offset: u64, len: u64) -> Vec<WriteDecl> {
    vec![WriteDecl { offset, len }]
}

// ---- pass 1: extent overlap --------------------------------------------

#[test]
fn overlapping_declarations_yield_extent_overlap() {
    let profile = theta_profile(4, 2);
    // Ranks 0 and 1 both declare [0, 1024): their chunks collide inside
    // the aggregation window.
    let decls = vec![d(0, 1024), d(0, 1024), d(1024, 1024), d(2048, 1024)];
    let cfg = TapiocaConfig { num_aggregators: 2, buffer_size: 1024, ..Default::default() };
    let sym = symbolic(&profile, decls, &cfg);
    let v = analyze(&sym, &cfg);
    let overlap = v.iter().find_map(|x| match x {
        StaticViolation::ExtentOverlap { rank_a, rank_b, range_a, range_b, .. } => {
            Some((*rank_a, *rank_b, *range_a, *range_b))
        }
        _ => None,
    });
    let (a, b, ra, rb) = overlap.expect("overlapping decls must be caught");
    assert!([a, b].contains(&0) && [a, b].contains(&1), "witness names the two writers");
    assert!(ra.1 > rb.0 && rb.1 > ra.0, "witness ranges actually overlap");
}

// ---- pass 2: window bounds & alignment ---------------------------------

#[test]
fn out_of_slot_put_yields_window_overflow() {
    let profile = theta_profile(4, 2);
    let decls = vec![d(0, 512), d(512, 512)];
    let cfg = TapiocaConfig { num_aggregators: 1, buffer_size: 1024, ..Default::default() };
    let mut sym = symbolic(&profile, decls, &cfg);
    assert!(analyze(&sym, &cfg).is_empty(), "clean schedule must prove out");
    // Push one put past its slot boundary.
    let put = &mut sym.groups[0].partitions[0].rounds[0].puts[0];
    put.window_offset = 3 * cfg.buffer_size;
    let v = analyze(&sym, &cfg);
    assert!(
        v.iter().any(|x| matches!(
            x,
            StaticViolation::WindowOverflow { offset, .. } if *offset == 3 * cfg.buffer_size
        )),
        "escaped put must overflow: {v:?}"
    );
}

#[test]
fn skewed_flush_yields_misaligned_flush() {
    let profile = theta_profile(4, 2);
    let decls = vec![d(0, 512), d(512, 512)];
    let cfg = TapiocaConfig { num_aggregators: 1, buffer_size: 1024, ..Default::default() };
    let mut sym = symbolic(&profile, decls, &cfg);
    let seg = &mut sym.groups[0].partitions[0].rounds[0].flushes[0];
    seg.buf_offset += 16;
    let v = analyze(&sym, &cfg);
    assert!(
        v.iter().any(|x| matches!(
            x,
            StaticViolation::MisalignedFlush { buf_offset, expected, .. }
                if *buf_offset == *expected + 16
        )),
        "skewed segment must misalign: {v:?}"
    );
}

// ---- pass 3: round agreement -------------------------------------------

#[test]
fn inflated_put_yields_round_mismatch() {
    let profile = theta_profile(4, 2);
    let decls = vec![d(0, 512), d(512, 512)];
    let cfg = TapiocaConfig { num_aggregators: 1, buffer_size: 1024, ..Default::default() };
    let mut sym = symbolic(&profile, decls, &cfg);
    sym.groups[0].partitions[0].rounds[0].puts[0].bytes += 64;
    let v = analyze(&sym, &cfg);
    assert!(
        v.iter().any(|x| matches!(x, StaticViolation::RoundMismatch { .. })),
        "inflated put must break the byte account: {v:?}"
    );
}

// ---- pass 4: fence-graph acyclicity ------------------------------------

#[test]
fn reversed_visit_order_yields_fence_cycle() {
    let profile = theta_profile(4, 2);
    // Both ranks own data in both halves of the span, so both visit
    // both partitions.
    let decls = vec![
        vec![WriteDecl { offset: 0, len: 256 }, WriteDecl { offset: 1024, len: 256 }],
        vec![WriteDecl { offset: 512, len: 256 }, WriteDecl { offset: 1536, len: 256 }],
    ];
    let cfg = TapiocaConfig { num_aggregators: 2, buffer_size: 1024, ..Default::default() };
    let mut sym = symbolic(&profile, decls, &cfg);
    assert!(analyze(&sym, &cfg).is_empty(), "clean schedule must prove out");
    assert!(sym.groups[0].visit_order.iter().all(|(_, v)| v.len() == 2));
    // Rank 1 now enters the partitions in the opposite order: a lock-
    // order inversion over the subgroup fences.
    sym.groups[0].visit_order[1].1.reverse();
    let v = analyze(&sym, &cfg);
    let cycle = v.iter().find_map(|x| match x {
        StaticViolation::FenceCycle { cycle } => Some(cycle.clone()),
        _ => None,
    });
    let cycle = cycle.expect("inverted visit order must cycle");
    assert!(cycle.len() >= 2, "cycle witness names the partitions: {cycle:?}");
}

// ---- pass 5: fault reachability & coverage -----------------------------

#[test]
fn crash_in_nonexistent_round_is_unreachable() {
    let profile = theta_profile(4, 2);
    let decls = vec![d(0, 512), d(512, 512)];
    let faults =
        FaultPlan::seeded(1).with(FaultSpec::AggregatorCrash { partition: 0, round: 99 });
    let cfg = TapiocaConfig {
        num_aggregators: 1,
        buffer_size: 1024,
        faults: Some(faults),
        ..Default::default()
    };
    let sym = symbolic(&profile, decls, &cfg);
    assert!(
        sym.groups[0].partitions[0].crash.is_none(),
        "an out-of-range crash must not compile"
    );
    let v = analyze(&sym, &cfg);
    assert!(
        v.iter().any(|x| matches!(
            x,
            StaticViolation::FaultUnreachable { fault, reason }
                if fault == "crash=0@99" && reason.contains("out of range")
        )),
        "out-of-range crash must be flagged: {v:?}"
    );
}

#[test]
fn crash_in_single_rank_partition_has_no_standby() {
    let profile = theta_profile(4, 1);
    let decls = vec![d(0, 512)];
    let faults =
        FaultPlan::seeded(1).with(FaultSpec::AggregatorCrash { partition: 0, round: 0 });
    let cfg = TapiocaConfig {
        num_aggregators: 1,
        buffer_size: 1024,
        faults: Some(faults),
        ..Default::default()
    };
    let sym = symbolic(&profile, decls, &cfg);
    let v = analyze(&sym, &cfg);
    assert!(
        v.iter().any(|x| matches!(
            x,
            StaticViolation::NoStandby { partition: 0, round: 0 }
        )),
        "a crash with nobody to take over must be flagged: {v:?}"
    );
}

#[test]
fn dropped_segment_yields_uncovered_bytes() {
    let profile = theta_profile(4, 2);
    let decls = vec![d(0, 512), d(512, 512)];
    let cfg = TapiocaConfig { num_aggregators: 1, buffer_size: 1024, ..Default::default() };
    let mut sym = symbolic(&profile, decls, &cfg);
    let round = &mut sym.groups[0].partitions[0].rounds[0];
    let expected = round.bytes;
    round.flushes.pop();
    let v = analyze(&sym, &cfg);
    assert!(
        v.iter().any(|x| matches!(
            x,
            StaticViolation::UncoveredBytes { expected: e, covered, .. }
                if *e == expected && *covered < expected
        )),
        "coverage gap must be flagged: {v:?}"
    );
}

// ---- pass 6: tier capacity ---------------------------------------------

#[test]
fn zero_capacity_tier_is_rejected() {
    let profile = theta_profile(4, 2);
    let decls = vec![d(0, 512), d(512, 512)];
    let cfg = TapiocaConfig { num_aggregators: 1, buffer_size: 1024, ..Default::default() };
    let sym = symbolic(&profile, decls, &cfg);
    let v = analyze_with_capacity(&sym, &cfg, "empty-tier", 0);
    assert!(
        v.iter().any(|x| matches!(
            x,
            StaticViolation::CapacityExceeded { tier: "empty-tier", required, capacity: 0 }
                if *required == 2 * cfg.buffer_size
        )),
        "double buffer cannot fit a zero-capacity tier: {v:?}"
    );
}

// ---- pass 7: merged-put arithmetic -------------------------------------

#[test]
fn coalesced_schedules_prove_out_with_merged_wire_puts() {
    // 2 ranks/node with contiguous extents: coalescing must replace
    // co-located chunk pairs with merged wire puts, and the repartition
    // must prove out across the pass catalogue.
    let profile = theta_profile(8, 2);
    let decls = IorSpec { num_ranks: 16, bytes_per_rank: 512 }.decls();
    let cfg = TapiocaConfig {
        num_aggregators: 2,
        buffer_size: 2048,
        coalescing: true,
        ..Default::default()
    };
    let sym = symbolic(&profile, decls, &cfg);
    let rounds: Vec<_> =
        sym.groups.iter().flat_map(|g| &g.partitions).flat_map(|p| &p.rounds).collect();
    let chunk_puts: usize = rounds.iter().map(|r| r.puts.len()).sum();
    let wire_puts: usize = rounds.iter().map(|r| r.wire_puts.len()).sum();
    let merged: usize = rounds
        .iter()
        .flat_map(|r| &r.wire_puts)
        .filter(|p| p.coalesced >= 2)
        .count();
    assert!(merged > 0, "coalescing must produce at least one merged wire put");
    assert!(wire_puts < chunk_puts, "the wire view must be strictly smaller");
    assert!(
        rounds.iter().flat_map(|r| &r.wire_puts).all(|p| p.coalesced != 1),
        "a run of one chunk is not a run"
    );
    let v = analyze(&sym, &cfg);
    assert!(v.is_empty(), "coalesced schedule must prove out: {v:?}");
}

#[test]
fn uncoalesced_wire_view_mirrors_chunk_puts() {
    let profile = theta_profile(8, 2);
    let decls = IorSpec { num_ranks: 16, bytes_per_rank: 2048 }.decls();
    let cfg = TapiocaConfig { num_aggregators: 2, buffer_size: 2048, ..Default::default() };
    let sym = symbolic(&profile, decls, &cfg);
    for round in sym.groups.iter().flat_map(|g| &g.partitions).flat_map(|p| &p.rounds) {
        assert_eq!(round.wire_puts, round.puts, "without coalescing the views coincide");
    }
}

#[test]
fn tampered_wire_view_yields_merged_put_mismatch() {
    let profile = theta_profile(8, 2);
    let decls = IorSpec { num_ranks: 16, bytes_per_rank: 512 }.decls();
    let cfg = TapiocaConfig {
        num_aggregators: 2,
        buffer_size: 2048,
        coalescing: true,
        ..Default::default()
    };
    let clean = symbolic(&profile, decls, &cfg);
    assert!(analyze(&clean, &cfg).is_empty());
    let merged_at = |sym: &SymbolicSchedule| -> (usize, usize, usize) {
        for (gi, g) in sym.groups.iter().enumerate() {
            for (pi, p) in g.partitions.iter().enumerate() {
                for (ri, r) in p.rounds.iter().enumerate() {
                    if r.wire_puts.iter().any(|w| w.coalesced >= 2) {
                        return (gi, pi, ri);
                    }
                }
            }
        }
        panic!("no merged wire put in the clean schedule");
    };

    // Inflating a merged put's byte count breaks the concatenation.
    let mut sym = clean.clone();
    let (gi, pi, ri) = merged_at(&sym);
    let w = sym.groups[gi].partitions[pi].rounds[ri]
        .wire_puts
        .iter_mut()
        .find(|w| w.coalesced >= 2)
        .unwrap();
    w.bytes += 8;
    let v = analyze(&sym, &cfg);
    assert!(
        v.iter().any(|x| x.code() == "merged-put-mismatch"),
        "inflated merged put must be caught: {v:?}"
    );

    // A "run" of one chunk is a schedule bug, not a merge.
    let mut sym = clean.clone();
    let (gi, pi, ri) = merged_at(&sym);
    let w = sym.groups[gi].partitions[pi].rounds[ri]
        .wire_puts
        .iter_mut()
        .find(|w| w.coalesced >= 2)
        .unwrap();
    w.coalesced = 1;
    let v = analyze(&sym, &cfg);
    assert!(
        v.iter().any(|x| x.code() == "merged-put-mismatch"),
        "coalesced=1 must be rejected: {v:?}"
    );

    // Dropping a merged put entirely breaks the byte account.
    let mut sym = clean.clone();
    let (gi, pi, ri) = merged_at(&sym);
    let wire = &mut sym.groups[gi].partitions[pi].rounds[ri].wire_puts;
    let i = wire.iter().position(|w| w.coalesced >= 2).unwrap();
    wire.remove(i);
    let v = analyze(&sym, &cfg);
    assert!(
        v.iter().any(|x| x.code() == "merged-put-mismatch"),
        "dropped merged put must be caught: {v:?}"
    );
}

// ---- builder integration -----------------------------------------------

#[test]
fn builder_rejects_fault_beyond_partition_bound() {
    let faults =
        FaultPlan::seeded(1).with(FaultSpec::AggregatorCrash { partition: 7, round: 0 });
    let err = TapiocaConfig::builder()
        .aggregators(4)
        .faults(faults)
        .build()
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("partition 7") && msg.contains("4 aggregators"),
        "cross-field bound must name the witness: {msg}"
    );
    // Stalls and targeted slowdowns are bounded the same way.
    let faults = FaultPlan::seeded(1).with(FaultSpec::FlushStall { partition: 9, round: 0 });
    assert!(TapiocaConfig::builder().aggregators(4).faults(faults).build().is_err());
    // In-bounds faults still build.
    let faults =
        FaultPlan::seeded(1).with(FaultSpec::AggregatorCrash { partition: 3, round: 0 });
    assert!(TapiocaConfig::builder().aggregators(4).faults(faults).build().is_ok());
}

#[test]
fn validate_static_accepts_clean_and_rejects_overlap() {
    let profile = theta_profile(4, 2);
    let clean = spec_of(vec![d(0, 512), d(512, 512)]);
    let cfg = TapiocaConfig::builder()
        .aggregators(2)
        .buffer_bytes(1024)
        .validate_static(&profile, &clean)
        .unwrap()
        .build()
        .unwrap();
    assert_eq!(cfg.num_aggregators, 2);

    let overlapping = spec_of(vec![d(0, 1024), d(0, 1024)]);
    let err = TapiocaConfig::builder()
        .aggregators(2)
        .buffer_bytes(1024)
        .validate_static(&profile, &overlapping)
        .unwrap_err();
    assert!(
        err.to_string().contains("static analysis"),
        "violation must surface through the builder: {err}"
    );
}

// ---- clean paper-grid sweep --------------------------------------------

#[test]
fn clean_paper_grid_produces_zero_violations() {
    let theta = theta_profile(8, 2);
    let mira = mira_profile(128, 1);
    let workloads: Vec<(&str, Vec<Vec<WriteDecl>>)> = vec![
        ("ior-16", IorSpec { num_ranks: 16, bytes_per_rank: 4096 }.decls()),
        (
            "hacc-soa",
            HaccIo { num_ranks: 16, particles_per_rank: 64, layout: Layout::StructOfArrays }
                .decls(),
        ),
        (
            "hacc-aos",
            HaccIo { num_ranks: 16, particles_per_rank: 48, layout: Layout::ArrayOfStructs }
                .decls(),
        ),
    ];
    for profile in [&theta, &mira] {
        for (name, decls) in &workloads {
            for &aggr in &[1usize, 2, 4, 8] {
                for &buf in &[512u64, 1024, 4096, 16384] {
                    let cfg = TapiocaConfig {
                        num_aggregators: aggr,
                        buffer_size: buf,
                        ..Default::default()
                    };
                    let sym = symbolic(profile, decls.clone(), &cfg);
                    let v = analyze(&sym, &cfg);
                    assert!(
                        v.is_empty(),
                        "{name} on {} (A={aggr}, B={buf}) must prove out, got {v:?}",
                        profile.name
                    );
                }
            }
        }
    }
}

#[test]
fn faulted_suite_configs_prove_out() {
    // The shipped fault workloads are legal: crash reaches a real
    // round, degrade paths stay byte-covering.
    let profile = theta_profile(8, 2);
    let decls = IorSpec { num_ranks: 16, bytes_per_rank: 4096 }.decls();
    for faults in [
        FaultPlan::seeded(11).with(FaultSpec::AggregatorCrash { partition: 1, round: 1 }),
        FaultPlan::seeded(7).with(FaultSpec::TransientFlushError { probability: 0.4 }),
        FaultPlan::seeded(3).with(FaultSpec::FlushStall { partition: 0, round: 1 }),
    ] {
        let cfg = TapiocaConfig {
            num_aggregators: 4,
            buffer_size: 1024,
            faults: Some(faults),
            ..Default::default()
        };
        let sym = symbolic(&profile, decls.clone(), &cfg);
        let v = analyze(&sym, &cfg);
        assert!(v.is_empty(), "legal fault plan must prove out: {v:?}");
    }
}

// ---- autotune static screen --------------------------------------------

#[test]
fn autotune_prunes_illegal_grid_points_without_simulating() {
    // An (artificially) 8 GiB stripe pushes the buffer ladder to
    // 4-32 GiB; doubled, the upper rungs overflow the 16 GiB MCDRAM
    // tiers. The static screen must discard those points before the
    // model or simulator sees them.
    const GIB: u64 = 1024 * 1024 * 1024;
    let profile = theta_profile(8, 2);
    let storage = StorageConfig::Lustre(LustreTunables {
        stripe_count: 4,
        stripe_size: 8 * GIB,
        lock_mode: LockMode::Shared,
    });
    let spec = spec_of(IorSpec { num_ranks: 16, bytes_per_rank: 4096 }.decls());
    let base = TapiocaConfig::default();
    let out = autotune_from(&profile, &storage, &spec, &base).unwrap();
    assert!(
        out.report.static_pruned >= 1,
        "at least one illegal grid point must be pruned statically: {}",
        out.report
    );
    assert_eq!(
        out.report.model_evals + out.report.static_pruned,
        out.report.grid_size,
        "pruned points must not reach the cost model: {}",
        out.report
    );
    assert!(
        u64::from(u32::try_from(out.report.shortlist).unwrap_or(u32::MAX))
            >= out.report.sims_run,
        "simulations stay bounded by the shortlist: {}",
        out.report
    );
}

#[test]
fn gpfs_grid_has_nothing_to_prune() {
    // On BG/Q there are no MCDRAM tiers, so the screen is a no-op —
    // pin that it stays zero rather than silently eating grid points.
    let profile = mira_profile(128, 1);
    let storage = StorageConfig::Gpfs(GpfsTunables::mira_optimized());
    let spec = spec_of(IorSpec { num_ranks: 32, bytes_per_rank: 8192 }.decls());
    let out = autotune_from(&profile, &storage, &spec, &TapiocaConfig::default()).unwrap();
    assert_eq!(out.report.static_pruned, 0, "{}", out.report);
}
