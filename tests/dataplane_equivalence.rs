//! Data-plane equivalence: intra-node put coalescing must be invisible
//! in the file — merged puts change *wire traffic*, never bytes.
//!
//! Covered here, on the mira/theta x ior/hacc grid the paper evaluates:
//! * staged and streamed runs with `coalescing: true` produce files
//!   bit-identical to the uncoalesced reference, while issuing strictly
//!   fewer wire puts (`IoStats::puts`) with identical `put_bytes`;
//! * fault plans (aggregator crash, transient flush errors, stalls) keep
//!   the equivalence — the crash replay re-issues merged puts from the
//!   surviving gather buffers without re-deposits;
//! * 8 perturbation seeds push the deposit/forward rendezvous through
//!   different interleavings without changing the file;
//! * the zero-copy flush path keeps `staging_copy_bytes == 0` for
//!   in-order streamed workloads (regression for the vectored rewrite);
//! * (with the `trace` feature) coalesced traces carry `coalesced >= 2`
//!   merged-put events, satisfy every checker invariant, and preserve
//!   per-partition aggregation byte totals — per-rank extent coverage.

use tapioca::aggregation::{run_write_pipeline, IoStats};
use tapioca::prelude::*;
use tapioca::schedule::{compute_coalesce_plan, compute_schedule, ScheduleParams};
use tapioca::{FaultPlan, FaultSpec};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_topology::{mira_profile, theta_profile, MachineProfile, TopologyProvider};
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

use std::sync::Arc;

const NRANKS: usize = 16;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-dataplane-eq");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Recognisable payload: a function of (rank, var, byte index).
fn payload(rank: usize, var: usize, len: u64) -> Vec<u8> {
    (0..len).map(|i| (rank as u64 * 131 + var as u64 * 17 + i * 3) as u8).collect()
}

/// The evaluation grid, shaped so round buffers span several co-located
/// ranks (the precondition for coalescing): 512 B per rank against a
/// 2 KiB buffer packs 4 ranks per round.
fn grid() -> Vec<(&'static str, MachineProfile, Vec<Vec<WriteDecl>>)> {
    let ior = IorSpec { num_ranks: NRANKS, bytes_per_rank: 512 }.decls();
    let hacc =
        HaccIo { num_ranks: NRANKS, particles_per_rank: 128, layout: Layout::StructOfArrays }
            .decls();
    vec![
        ("mira-ior", mira_profile(128, 4), ior.clone()),
        ("mira-hacc", mira_profile(128, 4), hacc.clone()),
        ("theta-ior", theta_profile(8, 2), ior),
        ("theta-hacc", theta_profile(8, 2), hacc),
    ]
}

fn base_cfg(coalescing: bool) -> TapiocaConfig {
    TapiocaConfig { num_aggregators: 2, buffer_size: 2048, coalescing, ..Default::default() }
}

/// Batch-staged run; returns (file bytes, per-rank stats).
fn staged(
    name: &str,
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
) -> (Vec<u8>, Vec<IoStats>) {
    let path = tmp(name);
    let machine = Arc::new(profile.machine.clone());
    let schedule = compute_schedule(decls, ScheduleParams {
        num_aggregators: cfg.num_aggregators,
        buffer_size: cfg.buffer_size,
        align_to_buffer: true,
    });
    let decls = decls.to_vec();
    let path2 = path.clone();
    let cfg = cfg.clone();
    let stats = Runtime::run(decls.len(), move |comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let r = comm.rank();
        let data: Vec<Vec<u8>> =
            decls[r].iter().enumerate().map(|(v, d)| payload(r, v, d.len)).collect();
        let epoch = comm.next_user_seq() * 2;
        run_write_pipeline(&comm, &schedule, &data, &file, &cfg, machine.as_ref(), epoch)
            .unwrap()
    });
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (bytes, stats)
}

/// Streamed session run (in declaration order); returns (file bytes,
/// per-rank stats of the completed epoch).
fn streamed(
    name: &str,
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
    seed: Option<u64>,
) -> (Vec<u8>, Vec<IoStats>) {
    let path = tmp(name);
    let machine = Arc::new(profile.machine.clone());
    let n = decls.len();
    let decls = decls.to_vec();
    let path2 = path.clone();
    let cfg = cfg.clone();
    let body = move |comm: tapioca_mpi::Comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let r = comm.rank();
        let mine = decls[r].clone();
        let mut io = Session::builder(&comm, file)
            .declarations(mine.clone())
            .config(cfg.clone())
            .topology(machine.clone())
            .build()
            .unwrap();
        for (v, d) in mine.iter().enumerate() {
            io.write(d.offset, &payload(r, v, d.len)).unwrap();
        }
        let stats = *io.stats().unwrap();
        io.finalize();
        stats
    };
    let stats = match seed {
        Some(s) => Runtime::run_perturbed(n, s, body),
        None => Runtime::run(n, body),
    };
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (bytes, stats)
}

fn total(stats: &[IoStats]) -> IoStats {
    let mut t = IoStats::default();
    for s in stats {
        t.merge(s);
    }
    t
}

/// The grid is shaped to actually coalesce: every cell's plan folds at
/// least one run, and the planned wire put count drops accordingly.
#[test]
fn coalesce_plan_is_nonempty_across_the_grid() {
    for (name, profile, decls) in grid() {
        let cfg = base_cfg(true);
        let schedule = compute_schedule(&decls, ScheduleParams {
            num_aggregators: cfg.num_aggregators,
            buffer_size: cfg.buffer_size,
            align_to_buffer: true,
        });
        let machine = &profile.machine;
        let plan = compute_coalesce_plan(&schedule, |r| machine.node_of_rank(r));
        assert!(!plan.is_empty(), "{name}: grid shape produced no coalesced runs");
        let chunk_total: usize = schedule.chunks_by_rank.iter().map(Vec::len).sum();
        assert!(
            plan.wire_put_count(&schedule) < chunk_total,
            "{name}: coalescing must reduce the planned wire put count"
        );
    }
}

#[test]
fn staged_coalesced_files_match_raw_with_fewer_wire_puts() {
    for (name, profile, decls) in grid() {
        let (raw_bytes, raw_stats) = staged(&format!("{name}-raw"), &profile, &decls, &base_cfg(false));
        let (co_bytes, co_stats) = staged(&format!("{name}-co"), &profile, &decls, &base_cfg(true));
        assert!(co_bytes == raw_bytes, "{name}: coalesced file diverges from raw reference");
        let (raw, co) = (total(&raw_stats), total(&co_stats));
        assert_eq!(co.put_bytes, raw.put_bytes, "{name}: contributed bytes must not change");
        assert_eq!(co.flush_bytes, raw.flush_bytes, "{name}: flush traffic must not change");
        assert!(co.coalesced_puts > 0, "{name}: no merged puts were issued");
        assert!(
            co.coalesced_chunks >= 2 * co.coalesced_puts,
            "{name}: every merged put must carry at least two chunks"
        );
        assert!(
            co.puts < raw.puts,
            "{name}: wire puts must drop ({} coalesced vs {} raw)",
            co.puts,
            raw.puts
        );
        assert_eq!(
            co.puts + co.coalesced_chunks - co.coalesced_puts,
            raw.puts,
            "{name}: wire-put arithmetic must account for every chunk"
        );
    }
}

#[test]
fn streamed_coalesced_files_match_raw_across_the_grid() {
    for (name, profile, decls) in grid() {
        let cfg_raw = base_cfg(false);
        let cfg_co = base_cfg(true);
        let (raw_bytes, _) = streamed(&format!("{name}-sraw"), &profile, &decls, &cfg_raw, None);
        let (co_bytes, co_stats) =
            streamed(&format!("{name}-sco"), &profile, &decls, &cfg_co, None);
        assert!(co_bytes == raw_bytes, "{name}: streamed coalesced file diverges");
        let co = total(&co_stats);
        assert!(co.coalesced_puts > 0, "{name}: streamed run never coalesced");
        // Zero-copy regression: when the issue order matches the round
        // order (IOR's single contiguous extent per rank), streaming
        // through the vectored flush path stages nothing, coalesced or
        // not. (HACC's interleaved SoA layout legitimately stages: a
        // var's chunks span rounds that are not yet ready in order.)
        if name.ends_with("ior") {
            assert_eq!(co.staging_copy_bytes, 0, "{name}: in-order stream must not copy");
            let raw =
                total(&streamed(&format!("{name}-sraw2"), &profile, &decls, &cfg_raw, None).1);
            assert_eq!(raw.staging_copy_bytes, 0, "{name}: raw in-order stream must not copy");
        }
    }
}

#[test]
fn fault_plans_keep_coalesced_files_identical() {
    let profile = mira_profile(128, 4);
    let decls = grid().remove(1).2; // mira-hacc: many small chunks
    let plans: Vec<(&str, FaultPlan)> = vec![
        (
            "crash",
            FaultPlan::seeded(11).with(FaultSpec::AggregatorCrash { partition: 0, round: 1 }),
        ),
        (
            "transient",
            FaultPlan::seeded(7).with(FaultSpec::TransientFlushError { probability: 0.4 }),
        ),
        ("stall", FaultPlan::seeded(5).with(FaultSpec::FlushStall { partition: 0, round: 1 })),
        (
            "crash+transient",
            FaultPlan::seeded(13)
                .with(FaultSpec::AggregatorCrash { partition: 0, round: 1 })
                .with(FaultSpec::TransientFlushError { probability: 0.4 }),
        ),
    ];
    for (label, plan) in plans {
        let raw_cfg = TapiocaConfig { faults: Some(plan.clone()), ..base_cfg(false) };
        let co_cfg = TapiocaConfig { faults: Some(plan), ..base_cfg(true) };
        let (raw_bytes, _) = staged(&format!("fault-{label}-raw"), &profile, &decls, &raw_cfg);
        let (co_bytes, co_stats) =
            staged(&format!("fault-{label}-co"), &profile, &decls, &co_cfg);
        assert!(co_bytes == raw_bytes, "fault plan {label}: coalesced file diverges");
        let co = total(&co_stats);
        assert!(co.coalesced_puts > 0, "fault plan {label}: run never coalesced");
        if label.starts_with("crash") {
            assert!(co.reelections > 0, "fault plan {label}: crash never fired");
        }
    }
}

#[test]
fn perturbed_interleavings_preserve_coalesced_equivalence() {
    let profile = theta_profile(8, 2);
    let decls = IorSpec { num_ranks: NRANKS, bytes_per_rank: 512 }.decls();
    let cfg = base_cfg(true);
    let (reference, _) = streamed("perturb-ref", &profile, &decls, &cfg, None);
    for seed in 0..8u64 {
        let (got, stats) =
            streamed(&format!("perturb-{seed}"), &profile, &decls, &cfg, Some(seed));
        assert!(got == reference, "seed {seed}: perturbed coalesced file diverges");
        assert!(total(&stats).coalesced_puts > 0, "seed {seed}: run never coalesced");
    }
}

#[cfg(feature = "trace")]
mod traced {
    //! Coalesced traces must satisfy the full protocol checker and
    //! still prove per-rank extent coverage: the merged put carries its
    //! chunk count and the concatenated length, so per-partition
    //! aggregation byte totals match the raw trace exactly.

    use super::*;
    use std::collections::BTreeMap;
    use tapioca_check::check;
    use tapioca_trace::{Phase, Trace, TraceOp, Tracer};

    fn traced_streamed(
        name: &str,
        profile: &MachineProfile,
        decls: &[Vec<WriteDecl>],
        cfg: &TapiocaConfig,
        seed: Option<u64>,
    ) -> Trace {
        let tracer = Tracer::new(profile.machine.num_ranks());
        let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg.clone() };
        let _ = streamed(name, profile, decls, &cfg, seed);
        tracer.drain()
    }

    /// Aggregation-phase put bytes per partition — the extent coverage
    /// measure the merged puts must preserve.
    fn put_bytes_by_partition(t: &Trace) -> BTreeMap<u32, u64> {
        let mut m = BTreeMap::new();
        for e in t.events() {
            if e.op == TraceOp::RmaPut && e.phase == Phase::Aggregation {
                *m.entry(e.partition).or_insert(0) += e.bytes;
            }
        }
        m
    }

    #[test]
    fn coalesced_traces_are_checker_clean_and_cover_extents() {
        for (name, profile, decls) in grid() {
            let raw =
                traced_streamed(&format!("{name}-traw"), &profile, &decls, &base_cfg(false), None);
            let co =
                traced_streamed(&format!("{name}-tco"), &profile, &decls, &base_cfg(true), None);
            let violations = check(&co);
            assert!(violations.is_empty(), "{name}: {violations:?}");
            assert!(
                co.events().iter().any(|e| e.op == TraceOp::RmaPut && e.coalesced >= 2),
                "{name}: no merged put recorded"
            );
            assert!(
                co.events().iter().all(|e| e.op != TraceOp::RmaPut || e.coalesced != 1),
                "{name}: a merged put must carry at least two chunks"
            );
            assert_eq!(
                put_bytes_by_partition(&co),
                put_bytes_by_partition(&raw),
                "{name}: merged puts must preserve per-partition extent coverage"
            );
        }
    }

    #[test]
    fn faulty_and_perturbed_coalesced_traces_are_checker_clean() {
        let profile = mira_profile(128, 4);
        let decls = grid().remove(1).2;
        let cfg = TapiocaConfig {
            faults: Some(
                FaultPlan::seeded(13)
                    .with(FaultSpec::AggregatorCrash { partition: 0, round: 1 })
                    .with(FaultSpec::TransientFlushError { probability: 0.4 }),
            ),
            ..base_cfg(true)
        };
        let t = traced_streamed("tfault", &profile, &decls, &cfg, None);
        let violations = check(&t);
        assert!(violations.is_empty(), "faulty coalesced trace: {violations:?}");

        for seed in [1u64, 5] {
            let t = traced_streamed(
                &format!("tperturb-{seed}"),
                &profile,
                &decls,
                &base_cfg(true),
                Some(seed),
            );
            let violations = check(&t);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }
}
