//! Edge cases at the tuner's input boundary and in `read_declared`:
//! zero-length extents, a single rank, non-uniform per-rank declaration
//! counts, and one-rank file groups. These are the degenerate shapes a
//! tuning sweep feeds the pipeline while exploring, so both the thread
//! runtime and the tuner itself must take them without panicking.

use tapioca::autotune::{autotune, empirical_sweep};
use tapioca::prelude::*;
use tapioca::sim_exec::{CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MIB};
use tapioca_workloads::datagen::expected_range;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-autotune-edge");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Write each rank's declared extents with seeded data, then read them
/// back through `read_declared` and compare buffer by buffer.
fn write_then_read_back(name: &str, ranks: usize, decls_of: impl Fn(u64) -> Vec<WriteDecl> + Send + Sync) {
    let path = tmp(name);
    let seed = 0xED6E ^ ranks as u64;
    Runtime::run(ranks, |comm| {
        let file = SharedFile::open_shared(&comm, &path);
        let r = comm.rank() as u64;
        let decls = decls_of(r);
        let cfg = TapiocaConfig { num_aggregators: 2.min(ranks), buffer_size: 1024, ..Default::default() };
        let mut io =
            Session::builder(&comm, file).declarations(decls.clone()).config(cfg).build().unwrap();
        for d in &decls {
            io.write(d.offset, &expected_range(seed, d.offset, d.len as usize)).unwrap();
        }
        let back = io.read_declared().unwrap();
        assert_eq!(back.len(), decls.len(), "rank {r}: one buffer per declared extent");
        for (d, buf) in decls.iter().zip(&back) {
            assert_eq!(buf.len() as u64, d.len, "rank {r}: buffer length");
            assert_eq!(
                buf[..],
                expected_range(seed, d.offset, d.len as usize)[..],
                "rank {r}: bytes at offset {}",
                d.offset
            );
        }
        io.finalize();
    });
    std::fs::remove_file(&path).ok();
}

#[test]
fn read_declared_with_zero_length_extents() {
    // Every rank declares one real extent and one zero-length extent;
    // the zero-length one must come back as an empty buffer, not shift
    // or corrupt its neighbors.
    write_then_read_back("zero-len", 4, |r| {
        vec![
            WriteDecl { offset: r * 512, len: 256 },
            WriteDecl { offset: r * 512 + 256, len: 0 },
        ]
    });
}

#[test]
fn read_declared_single_rank() {
    write_then_read_back("single-rank", 1, |_| {
        vec![WriteDecl { offset: 0, len: 4096 }]
    });
}

#[test]
fn read_declared_non_uniform_decl_counts() {
    // Rank 0: two extents, rank 1: one, rank 2: none, rank 3: three.
    // Collective calls must agree on rounds even when some ranks have
    // nothing to say.
    write_then_read_back("non-uniform", 4, |r| match r {
        0 => vec![
            WriteDecl { offset: 0, len: 300 },
            WriteDecl { offset: 300, len: 200 },
        ],
        1 => vec![WriteDecl { offset: 500, len: 500 }],
        2 => vec![],
        _ => vec![
            WriteDecl { offset: 1000, len: 100 },
            WriteDecl { offset: 1100, len: 100 },
            WriteDecl { offset: 1200, len: 100 },
        ],
    });
}

fn theta_env() -> (tapioca_topology::MachineProfile, StorageConfig) {
    (
        theta_profile(8, 2),
        StorageConfig::Lustre(LustreTunables::theta_optimized()),
    )
}

#[test]
fn tuner_accepts_zero_length_extents() {
    let (profile, storage) = theta_env();
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..8).collect(),
            decls: (0..8u64)
                .map(|r| {
                    vec![
                        WriteDecl { offset: r * MIB, len: if r % 2 == 0 { MIB } else { 0 } },
                    ]
                })
                .collect(),
        }],
        mode: AccessMode::Write,
    };
    let out = autotune(&profile, &storage, &spec).unwrap();
    assert!(out.tuned_bandwidth >= out.rule_bandwidth);
    assert!(out.best.num_aggregators >= 1);
    let sweep = empirical_sweep(&profile, &storage, &spec).unwrap();
    assert!(sweep.best.num_aggregators >= 1);
}

#[test]
fn tuner_accepts_non_uniform_decl_counts() {
    let (profile, storage) = theta_env();
    // Rank r declares r extents (rank 0 declares none).
    let decls: Vec<Vec<WriteDecl>> = (0..8u64)
        .map(|r| {
            (0..r)
                .map(|i| WriteDecl { offset: (r * 8 + i) * 64 * 1024, len: 64 * 1024 })
                .collect()
        })
        .collect();
    let spec = CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..8).collect(), decls }],
        mode: AccessMode::Write,
    };
    let out = autotune(&profile, &storage, &spec).unwrap();
    assert!(out.tuned_bandwidth >= out.rule_bandwidth);
}

#[test]
fn tuner_accepts_one_rank_groups() {
    let (profile, storage) = theta_env();
    // Two files, each written by exactly one rank: every candidate must
    // collapse to a single aggregator.
    let spec = CollectiveSpec {
        groups: vec![
            GroupSpec {
                file: 0,
                ranks: vec![0],
                decls: vec![vec![WriteDecl { offset: 0, len: MIB }]],
            },
            GroupSpec {
                file: 1,
                ranks: vec![1],
                decls: vec![vec![WriteDecl { offset: 0, len: MIB }]],
            },
        ],
        mode: AccessMode::Write,
    };
    let out = autotune(&profile, &storage, &spec).unwrap();
    assert_eq!(out.best.num_aggregators, 1);
    for (cfg, _) in &out.confirmed {
        assert_eq!(cfg.num_aggregators, 1, "a 1-rank group admits exactly one aggregator");
    }
    let sweep = empirical_sweep(&profile, &storage, &spec).unwrap();
    assert_eq!(sweep.best.num_aggregators, 1);
}

#[test]
fn tuner_enables_coalescing_only_where_it_pays() {
    // 16 ranks/node with many small chunks: the merged-put latency
    // saving dominates, so the model-preferred variant of the winning
    // sim key must carry coalescing.
    let profile = theta_profile(16, 16);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    let n = 256;
    let decls: Vec<Vec<WriteDecl>> = (0..n as u64)
        .map(|r| vec![WriteDecl { offset: r * 8 * 1024, len: 8 * 1024 }])
        .collect();
    let spec = CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..n).collect(), decls }],
        mode: AccessMode::Write,
    };
    let out = autotune(&profile, &storage, &spec).unwrap();
    assert!(out.best.coalescing, "dense nodes with small chunks must tune coalescing on");
    assert!(out.tuned_bandwidth >= out.rule_bandwidth);

    // 1 rank/node: no run can ever form, so coalescing must stay off.
    let profile = theta_profile(16, 1);
    let n = 16;
    let decls: Vec<Vec<WriteDecl>> =
        (0..n as u64).map(|r| vec![WriteDecl { offset: r * MIB, len: MIB }]).collect();
    let spec = CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..n).collect(), decls }],
        mode: AccessMode::Write,
    };
    let out = autotune(&profile, &storage, &spec).unwrap();
    assert!(!out.best.coalescing, "one rank per node has nothing to merge");
}
