//! Property sweep: the node-folded election must pick the *identical*
//! winner — same index, same MINLOC tie-break — as the naive pairwise
//! oracle, for every strategy, on every machine profile, across
//! irregular partition shapes and adversarial weight patterns.
//!
//! `elect_aggregator_fast` is allowed to evaluate folded costs in a
//! different floating-point order than the oracle only because it prunes
//! with a tolerance and replays survivors through the oracle's exact
//! arithmetic (`election_cost`). This sweep is the evidence that the
//! prune is conservative enough in practice: ties, cancellation-heavy
//! weights, and single-node partitions all land on the oracle's answer.

use std::collections::BTreeSet;

use tapioca::placement::{
    elect_aggregator, elect_aggregator_fast, elect_partitions, PartitionElection,
    PlacementStrategy,
};
use tapioca_topology::{cluster_profile, mira_profile, theta_profile, Rank, TopologyProvider};

/// SplitMix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// An irregular membership: a few clustered node runs plus scattered
/// stragglers, deduplicated and sorted (partitions are rank-sorted).
fn irregular_members(rng: &mut Rng, num_ranks: usize, target: usize) -> Vec<Rank> {
    let mut set = BTreeSet::new();
    while set.len() < target {
        if rng.below(3) > 0 {
            // clustered run of consecutive ranks
            let start = rng.below(num_ranks as u64) as usize;
            let run = 1 + rng.below(24) as usize;
            for r in start..(start + run).min(num_ranks) {
                set.insert(r);
                if set.len() >= target {
                    break;
                }
            }
        } else {
            set.insert(rng.below(num_ranks as u64) as usize);
        }
    }
    set.into_iter().collect()
}

/// Weight patterns chosen to stress the folded prune: exact ties,
/// random spreads, one member dominating its node's fold (maximum
/// cancellation in `W(node) - w_cand`), and mostly-zero sparsity.
fn weights_for(rng: &mut Rng, n: usize, pattern: usize) -> Vec<u64> {
    match pattern % 4 {
        0 => vec![1 << 20; n],
        1 => (0..n).map(|_| rng.below(64 * 1024 * 1024)).collect(),
        2 => {
            let mut w = vec![1u64; n];
            w[rng.below(n as u64) as usize] = 1 << 34;
            w
        }
        _ => (0..n).map(|_| if rng.below(5) == 0 { rng.below(1 << 22) } else { 0 }).collect(),
    }
}

fn strategies() -> Vec<PlacementStrategy> {
    vec![
        PlacementStrategy::TopologyAware,
        PlacementStrategy::RankOrder,
        PlacementStrategy::ShortestPathToIo,
        PlacementStrategy::WorstCase,
        PlacementStrategy::Random { seed: 0xfeed },
    ]
}

fn machines() -> Vec<(&'static str, Box<dyn TopologyProvider>)> {
    vec![
        ("mira", Box::new(mira_profile(512, 16).machine)),
        ("theta", Box::new(theta_profile(512, 16).machine)),
        ("cluster", Box::new(cluster_profile(128, 16).machine)),
    ]
}

#[test]
fn fast_election_matches_naive_oracle_everywhere() {
    let mut rng = Rng(0x7a91_0cc5);
    for (name, topo) in machines() {
        let topo = topo.as_ref();
        let num_ranks = topo.num_ranks();
        for strategy in strategies() {
            for case in 0..12usize {
                // sizes span sub-fold (< 8 members), one-node, and
                // multi-node shapes
                let target = match case % 4 {
                    0 => 1 + rng.below(7) as usize,
                    1 => topo.ranks_per_node().min(num_ranks),
                    _ => 16 + rng.below(113) as usize,
                };
                let members = irregular_members(&mut rng, num_ranks, target);
                let weights = weights_for(&mut rng, members.len(), case);
                let io = topo.io_nodes_for(&members).first().copied().unwrap_or(0);
                let part = case * 7 + 1;
                let naive = elect_aggregator(topo, &members, &weights, io, part, strategy);
                let fast = elect_aggregator_fast(topo, &members, &weights, io, part, strategy);
                assert_eq!(
                    fast, naive,
                    "winner mismatch: machine={name} strategy={strategy:?} case={case} \
                     members={} (fast={fast} naive={naive})",
                    members.len(),
                );
            }
        }
    }
}

#[test]
fn batched_elections_match_per_partition_oracle() {
    let mut rng = Rng(0xbead_5151);
    let profile = mira_profile(512, 16);
    let topo = &profile.machine;
    for strategy in strategies() {
        let shapes: Vec<(Vec<Rank>, Vec<u64>)> = (0..9usize)
            .map(|case| {
                let members = irregular_members(&mut rng, topo.num_ranks(), 8 + case * 13);
                let weights = weights_for(&mut rng, members.len(), case);
                (members, weights)
            })
            .collect();
        let parts: Vec<PartitionElection<'_>> = shapes
            .iter()
            .enumerate()
            .map(|(i, (m, w))| PartitionElection {
                members: m,
                weights: w,
                io: topo.io_nodes_for(m).first().copied().unwrap_or(0),
                partition_index: i,
            })
            .collect();
        let batched = elect_partitions(topo, &parts, strategy);
        for (p, &choice) in parts.iter().zip(&batched) {
            let naive = elect_aggregator(
                topo,
                p.members,
                p.weights,
                p.io,
                p.partition_index,
                strategy,
            );
            assert_eq!(
                choice, naive,
                "batch mismatch: strategy={strategy:?} partition={}",
                p.partition_index
            );
        }
    }
}

/// Enough total work (`sum of members^2`) to cross the internal
/// parallelism threshold, so the threaded fan-out path is exercised and
/// must still reproduce the oracle exactly.
#[test]
fn parallel_election_path_matches_oracle() {
    let mut rng = Rng(0x0dd_ba11);
    let profile = mira_profile(512, 16);
    let topo = &profile.machine;
    let shapes: Vec<(Vec<Rank>, Vec<u64>)> = (0..2usize)
        .map(|case| {
            let members = irregular_members(&mut rng, topo.num_ranks(), 1024);
            let weights = weights_for(&mut rng, members.len(), case + 1);
            (members, weights)
        })
        .collect();
    let parts: Vec<PartitionElection<'_>> = shapes
        .iter()
        .enumerate()
        .map(|(i, (m, w))| PartitionElection {
            members: m,
            weights: w,
            io: topo.io_nodes_for(m).first().copied().unwrap_or(0),
            partition_index: i,
        })
        .collect();
    // 2 * 1024^2 = 2 MiB of work units > the 1 MiB fan-out threshold.
    let batched = elect_partitions(topo, &parts, PlacementStrategy::TopologyAware);
    for (p, &choice) in parts.iter().zip(&batched) {
        let naive = elect_aggregator(
            topo,
            p.members,
            p.weights,
            p.io,
            p.partition_index,
            PlacementStrategy::TopologyAware,
        );
        assert_eq!(choice, naive, "parallel path mismatch at partition {}", p.partition_index);
    }
}
