//! Bit-identity sweep for the incremental component-sharded engine.
//!
//! The engine promises that `Recompute::Incremental` (re-waterfill only
//! dirty interference components) produces *bitwise* the same schedule
//! as `Recompute::Full` (re-waterfill everything on any change), for
//! every `RateAlgo`. This sweep drives the public API across seeded
//! random workloads — random routes, dependency edges, completion
//! slack, mid-run capacity scaling and virtual-link growth — and
//! asserts every finish time matches the Scan/Full reference to the
//! last bit.

use tapioca_netsim::{RateAlgo, Recompute, Simulator};

/// SplitMix64 — the workspace's standard seeded generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in [0, 1) with 53-bit resolution.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run one seeded workload under the given engine configuration and
/// return the bit patterns of every flow's finish time, in flow order.
fn run_case(case: u64, algo: RateAlgo, mode: Recompute) -> Vec<u64> {
    let mut rng = Rng(0xC0FF_EE00 ^ case.wrapping_mul(0x0123_4567_89AB_CDEF));
    let n_links = 8 + rng.below(184) as usize;
    let caps: Vec<f64> = (0..n_links).map(|_| 1e9 * (1.0 + rng.below(16) as f64)).collect();

    let mut sim = Simulator::with_capacities(caps);
    sim.set_rate_algo(algo);
    sim.set_recompute(mode);
    if case.is_multiple_of(5) {
        sim.set_completion_slack(1e-6);
    }

    let n_flows = 12 + rng.below(36) as usize;
    let mut ids = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        let len = 1 + rng.below(7) as usize;
        let mut route = Vec::with_capacity(len);
        while route.len() < len {
            let l = rng.below(n_links as u64) as usize;
            if !route.contains(&l) {
                route.push(l);
            }
        }
        let start = rng.f64() * 4.0;
        let delay = if rng.below(3) == 0 { rng.f64() * 1e-4 } else { 0.0 };
        let bytes = 1e6 + rng.f64() * 5e9;
        let mut deps = Vec::new();
        if !ids.is_empty() && rng.below(3) == 0 {
            for _ in 0..=rng.below(3) {
                deps.push(ids[rng.below(ids.len() as u64) as usize]);
            }
        }
        ids.push(sim.submit_with_deps(start, delay, &route, bytes, &deps));
    }

    // Mid-run perturbations: capacity scaling must invalidate every
    // component, virtual-link growth must resize the link tables.
    if case.is_multiple_of(3) {
        for _ in 0..5 {
            if !sim.step() {
                break;
            }
        }
        sim.scale_capacities(0.4 + rng.f64() * 0.6);
    }
    if case.is_multiple_of(7) {
        for _ in 0..3 {
            if !sim.step() {
                break;
            }
        }
        let vl = sim.add_virtual_link(2e9);
        let shared = rng.below(n_links as u64) as usize;
        ids.push(sim.submit(sim.now() + 0.1, [shared, vl], 3e9));
    }

    sim.run_to_idle();
    ids.iter()
        .map(|&id| sim.finish_time(id).expect("all flows complete").to_bits())
        .collect()
}

#[test]
fn incremental_bit_identical_to_full_recompute() {
    const CASES: u64 = 72;
    let variants = [
        ("scan/full", RateAlgo::Scan, Recompute::Full),
        ("scan/incr", RateAlgo::Scan, Recompute::Incremental),
        ("heap/full", RateAlgo::Heap, Recompute::Full),
        ("heap/incr", RateAlgo::Heap, Recompute::Incremental),
        ("auto/full", RateAlgo::Auto, Recompute::Full),
        ("auto/incr", RateAlgo::Auto, Recompute::Incremental),
    ];
    for case in 0..CASES {
        let reference = run_case(case, RateAlgo::Scan, Recompute::Full);
        for (label, algo, mode) in variants {
            let got = run_case(case, algo, mode);
            assert_eq!(got.len(), reference.len(), "case {case} {label}: flow count");
            for (i, (&g, &r)) in got.iter().zip(&reference).enumerate() {
                assert!(
                    g == r,
                    "case {case} {label}: flow {i} finish {} != reference {}",
                    f64::from_bits(g),
                    f64::from_bits(r),
                );
            }
        }
    }
}
