//! Fault-injection & recovery: seeded matrix over crash round and retry
//! budget, on both executors.
//!
//! The contract under test (see `DESIGN.md`, "Fault model & recovery"):
//! a within-budget [`FaultPlan`] must leave the written file
//! byte-identical to the fault-free run, recovery traces must satisfy
//! every checker invariant, and an exhausted retry budget must degrade
//! to direct per-rank writes — still byte-identical, never deadlocked —
//! surfacing as [`WriteOutcome::Degraded`], not a panic.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use tapioca::prelude::*;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, SimReport, StorageConfig};
use tapioca::{FaultPlan, FaultSpec, IoPolicy};
use tapioca_check::{check, ViolationKind};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::theta_profile;
use tapioca_trace::{Trace, TraceOp, Tracer};

/// 8 ranks x 256 B contiguous blocks, 2 aggregators, 256 B buffers:
/// two 4-member partitions with 4 rounds each — enough structure for
/// crashes with standbys and multi-round replay on both executors.
const NRANKS: usize = 8;
const PER_RANK: u64 = 256;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-fault-recovery");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

fn base_cfg() -> TapiocaConfig {
    TapiocaConfig { num_aggregators: 2, buffer_size: 256, ..Default::default() }
}

/// A fast retry policy so backoffs do not dominate test wall-clock.
fn fast_policy(max_retries: u32) -> IoPolicy {
    IoPolicy {
        max_retries,
        base_backoff: Duration::from_micros(1),
        op_timeout: Duration::from_secs(30),
    }
}

fn decls_for(rank: usize) -> Vec<WriteDecl> {
    vec![WriteDecl { offset: rank as u64 * PER_RANK, len: PER_RANK }]
}

fn payload_for(rank: usize) -> Vec<u8> {
    (0..PER_RANK).map(|i| (rank as u64 * 37 + i * 3) as u8).collect()
}

/// Run the thread executor over the standard workload; return the file
/// bytes plus every rank's (outcome, stats).
fn run_thread(name: &str, cfg: &TapiocaConfig) -> (Vec<u8>, Vec<(WriteOutcome, IoStats)>) {
    let path = tmp(name);
    let results = Arc::new(Mutex::new(Vec::new()));
    let cfg = cfg.clone();
    let path2 = path.clone();
    let results2 = Arc::clone(&results);
    Runtime::run(NRANKS, move |comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let r = comm.rank();
        let mut io = Session::builder(&comm, file)
            .declarations(decls_for(r))
            .config(cfg.clone())
            .build()
            .unwrap();
        let outcome = io.write(r as u64 * PER_RANK, &payload_for(r)).unwrap();
        let stats = *io.stats().expect("pipeline ran");
        io.finalize();
        results2.lock().unwrap().push((outcome, stats));
    });
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (bytes, Arc::try_unwrap(results).unwrap().into_inner().unwrap())
}

/// The fault-free reference bytes every faulty run must reproduce.
fn fault_free_bytes() -> Vec<u8> {
    let mut expect = vec![0u8; NRANKS * PER_RANK as usize];
    for r in 0..NRANKS {
        let o = r * PER_RANK as usize;
        expect[o..o + PER_RANK as usize].copy_from_slice(&payload_for(r));
    }
    expect
}

/// Run the simulator over the standard workload and return its report.
fn run_sim(cfg: &TapiocaConfig) -> SimReport {
    run_sim_sized(cfg, PER_RANK)
}

/// Like [`run_sim`] but with `per` bytes per rank (link-degrade effects
/// only show on bandwidth-bound transfers, not 256 B latency-bound
/// ones).
fn run_sim_sized(cfg: &TapiocaConfig, per: u64) -> SimReport {
    let profile = theta_profile(4, 2);
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..NRANKS).collect(),
            decls: (0..NRANKS)
                .map(|r| vec![WriteDecl { offset: r as u64 * per, len: per }])
                .collect(),
        }],
        mode: AccessMode::Write,
    };
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    run_tapioca_sim(&profile, &storage, &spec, cfg).unwrap()
}

/// Thread-mode trace of the standard workload under `cfg`.
fn thread_trace(name: &str, cfg: &TapiocaConfig) -> Trace {
    let tracer = Tracer::new(NRANKS);
    let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg.clone() };
    let (bytes, _) = run_thread(name, &cfg);
    assert_eq!(bytes, fault_free_bytes(), "{name}: file corrupted");
    tracer.drain()
}

#[test]
fn crash_recovery_is_byte_identical_across_rounds() {
    // Matrix axis 1: the crash round. Every within-budget recovery must
    // reproduce the fault-free file exactly, with one re-election.
    let expect = fault_free_bytes();
    for crash_round in 0..3u32 {
        let cfg = TapiocaConfig {
            faults: Some(
                FaultPlan::seeded(11)
                    .with(FaultSpec::AggregatorCrash { partition: 0, round: crash_round }),
            ),
            ..base_cfg()
        };
        let (bytes, results) = run_thread(&format!("crash-r{crash_round}"), &cfg);
        assert_eq!(bytes, expect, "crash at round {crash_round} corrupted the file");
        let total: IoStats = results.iter().fold(IoStats::default(), |mut acc, (o, s)| {
            assert_eq!(*o, WriteOutcome::Flushed, "recovery must not degrade");
            acc.merge(s);
            acc
        });
        assert_eq!(total.reelections, 1, "crash at round {crash_round}");
        assert_eq!(total.degraded, 0);
        assert!(total.faults_injected >= 1);
    }
}

#[test]
fn transient_faults_within_budget_retry_to_identical_bytes() {
    // Matrix axis 2: the retry budget. Flaky flushes that stay within
    // budget must retry to success with no behavioural difference.
    let expect = fault_free_bytes();
    for (probability, budget) in [(0.3, 8u32), (0.6, 24u32)] {
        let cfg = TapiocaConfig {
            faults: Some(
                FaultPlan::seeded(7).with(FaultSpec::TransientFlushError { probability }),
            ),
            io_policy: fast_policy(budget),
            ..base_cfg()
        };
        let name = format!("flaky-{budget}");
        let (bytes, results) = run_thread(&name, &cfg);
        assert_eq!(bytes, expect, "{name}: flaky flushes corrupted the file");
        let total: IoStats = results.iter().fold(IoStats::default(), |mut acc, (o, s)| {
            assert_eq!(*o, WriteOutcome::Flushed);
            acc.merge(s);
            acc
        });
        assert!(total.retries > 0, "{name}: seeded plan injected no retries");
        assert_eq!(total.retries, total.faults_injected);
    }
}

#[test]
fn crash_and_flaky_compose() {
    // Both fault kinds in one plan, crash in each partition.
    let cfg = TapiocaConfig {
        faults: Some(
            FaultPlan::seeded(3)
                .with(FaultSpec::AggregatorCrash { partition: 0, round: 1 })
                .with(FaultSpec::AggregatorCrash { partition: 1, round: 2 })
                .with(FaultSpec::TransientFlushError { probability: 0.4 }),
        ),
        io_policy: fast_policy(16),
        ..base_cfg()
    };
    let (bytes, results) = run_thread("compose", &cfg);
    assert_eq!(bytes, fault_free_bytes());
    let total: IoStats = results.iter().fold(IoStats::default(), |mut acc, (_, s)| {
        acc.merge(s);
        acc
    });
    assert_eq!(total.reelections, 2);
}

#[test]
fn exhausted_budget_degrades_without_deadlock() {
    // A stalled round exhausts any budget: the affected partition must
    // fall back to direct writes (Degraded outcome), the others stay
    // Flushed, and the file is still byte-identical. Completing at all
    // is the no-deadlock assertion.
    let cfg = TapiocaConfig {
        faults: Some(FaultPlan::seeded(5).with(FaultSpec::FlushStall { partition: 0, round: 1 })),
        io_policy: fast_policy(2),
        ..base_cfg()
    };
    let (bytes, results) = run_thread("degrade", &cfg);
    assert_eq!(bytes, fault_free_bytes(), "degraded fallback corrupted the file");
    let degraded = results.iter().filter(|(o, _)| *o == WriteOutcome::Degraded).count();
    let flushed = results.iter().filter(|(o, _)| *o == WriteOutcome::Flushed).count();
    assert_eq!(degraded, 4, "every member of the stalled partition degrades");
    assert_eq!(flushed, 4, "the healthy partition is unaffected");
}

#[test]
fn recovery_thread_trace_passes_the_checker() {
    // Crash + flaky flushes: the recorded trace must satisfy every
    // protocol invariant, including the recovery-epoch and
    // retry-resolution rules the checker learned for this subsystem.
    let cfg = TapiocaConfig {
        faults: Some(
            FaultPlan::seeded(13)
                .with(FaultSpec::AggregatorCrash { partition: 0, round: 1 })
                .with(FaultSpec::TransientFlushError { probability: 0.4 }),
        ),
        io_policy: fast_policy(16),
        ..base_cfg()
    };
    let trace = thread_trace("trace-clean", &cfg);
    let ops: Vec<TraceOp> = trace.events().iter().map(|e| e.op).collect();
    assert!(ops.contains(&TraceOp::Crash), "trace records the crash");
    assert!(ops.contains(&TraceOp::Reelect), "trace records the re-election");
    assert!(ops.contains(&TraceOp::Retry), "trace records worker retries");
    let v = check(&trace);
    assert!(v.is_empty(), "recovery trace has violations: {v:?}");
}

#[test]
fn degraded_thread_trace_passes_the_checker() {
    let cfg = TapiocaConfig {
        faults: Some(FaultPlan::seeded(5).with(FaultSpec::FlushStall { partition: 1, round: 0 })),
        io_policy: fast_policy(2),
        ..base_cfg()
    };
    let trace = thread_trace("trace-degrade", &cfg);
    assert!(trace.events().iter().any(|e| e.op == TraceOp::Degrade));
    let v = check(&trace);
    assert!(v.is_empty(), "degraded trace has violations: {v:?}");
}

#[test]
fn tampered_recovery_trace_is_caught() {
    // Negative control: relabel one replayed put to a later round and
    // the recovery-epoch rule must object.
    let cfg = TapiocaConfig {
        faults: Some(
            FaultPlan::seeded(13).with(FaultSpec::AggregatorCrash { partition: 0, round: 1 }),
        ),
        ..base_cfg()
    };
    let trace = thread_trace("trace-tamper", &cfg);
    let mut events = trace.events().to_vec();
    let reelect = events
        .iter()
        .position(|e| e.op == TraceOp::Reelect)
        .expect("recovery trace has a re-election");
    // Match by partition, not by rank: whether the *new aggregator
    // itself* still has a put to replay depends on thread scheduling,
    // but the crashed round's replayed puts from the partition always
    // follow the re-election.
    let put = events[reelect..]
        .iter()
        .position(|e| e.op == TraceOp::RmaPut && e.partition == events[reelect].partition)
        .map(|i| i + reelect)
        .expect("a replayed put follows the re-election");
    events[put].round += 1;
    let v = check(&Trace::from_events(events));
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::PutOutsideEpoch),
        "tampered replay went undetected: {v:?}"
    );
}

#[test]
fn sim_crash_recovery_is_counted_and_trace_clean() {
    let tracer = Tracer::new(NRANKS);
    let cfg = TapiocaConfig {
        faults: Some(
            FaultPlan::seeded(11).with(FaultSpec::AggregatorCrash { partition: 0, round: 1 }),
        ),
        tracer: Some(Arc::clone(&tracer)),
        ..base_cfg()
    };
    let report = run_sim(&cfg);
    assert_eq!(report.reelections, 1);
    assert!(report.faults_injected >= 1);
    assert_eq!(report.degraded, 0);
    let trace = tracer.drain();
    let ops: Vec<TraceOp> = trace.events().iter().map(|e| e.op).collect();
    assert!(ops.contains(&TraceOp::Crash) && ops.contains(&TraceOp::Reelect));
    let v = check(&trace);
    assert!(v.is_empty(), "sim recovery trace has violations: {v:?}");
}

#[test]
fn sim_and_thread_agree_on_injected_retries() {
    // The fault schedule is a pure function of (seed, partition, round,
    // segment), so both executors must charge the identical number of
    // within-budget retries for the same plan and workload.
    let cfg = TapiocaConfig {
        faults: Some(FaultPlan::seeded(7).with(FaultSpec::TransientFlushError { probability: 0.5 })),
        io_policy: fast_policy(16),
        ..base_cfg()
    };
    let (_, results) = run_thread("parity", &cfg);
    let thread_retries: u64 = results.iter().map(|(_, s)| s.retries).sum();
    let report = run_sim(&cfg);
    assert!(thread_retries > 0, "seeded plan injected no retries");
    assert_eq!(report.retries, thread_retries, "executors disagree on recovery cost");
}

#[test]
fn sim_degrade_and_slowdown_are_measurable() {
    // A stalled round degrades the partition in simulation too, and a
    // fabric-wide link degrade slows the clean run down.
    let stall = TapiocaConfig {
        faults: Some(FaultPlan::seeded(5).with(FaultSpec::FlushStall { partition: 0, round: 1 })),
        io_policy: fast_policy(2),
        ..base_cfg()
    };
    assert_eq!(run_sim(&stall).degraded, 1);

    let big = TapiocaConfig { buffer_size: 1 << 20, ..base_cfg() };
    let clean = run_sim_sized(&big, 4 << 20);
    let degraded_net = TapiocaConfig {
        faults: Some(FaultPlan::seeded(5).with(FaultSpec::LinkDegrade { factor: 0.25 })),
        ..big.clone()
    };
    let slow = run_sim_sized(&degraded_net, 4 << 20);
    assert!(
        slow.elapsed > clean.elapsed,
        "link degrade must cost time: {} vs {}",
        slow.elapsed,
        clean.elapsed
    );
}

#[test]
fn autotuned_config_composes_with_fault_injection() {
    // Autotune over the declared workload with a seeded fault plan in
    // the base config: the tuner must strip the plan while measuring
    // (clean sims), re-attach it to the winner, and the tuned config
    // must then ride out the faults like any hand-written one —
    // byte-identical file, Degraded-or-better outcomes, checker-clean
    // trace.
    let profile = theta_profile(4, 2);
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    let spec = CollectiveSpec {
        groups: vec![GroupSpec {
            file: 0,
            ranks: (0..NRANKS).collect(),
            decls: (0..NRANKS)
                .map(|r| vec![WriteDecl { offset: r as u64 * PER_RANK, len: PER_RANK }])
                .collect(),
        }],
        mode: AccessMode::Write,
    };
    let base = TapiocaConfig {
        faults: Some(
            FaultPlan::seeded(13)
                .with(FaultSpec::AggregatorCrash { partition: 0, round: 0 })
                .with(FaultSpec::TransientFlushError { probability: 0.4 }),
        ),
        io_policy: fast_policy(16),
        ..Default::default()
    };
    let out = tapioca::autotune::autotune_from(&profile, &storage, &spec, &base).unwrap();
    assert!(out.tuned_bandwidth >= out.rule_bandwidth);
    assert!(out.best.faults.is_some(), "tuned config must carry the fault plan");

    // Small buffers so the 8x256B workload still has multiple rounds of
    // structure under the tuned aggregator count.
    let cfg = TapiocaConfig { buffer_size: 256, ..out.best };
    let trace = thread_trace("autotune-faults", &cfg);
    let v = check(&trace);
    assert!(v.is_empty(), "tuned-config recovery trace has violations: {v:?}");

    let (bytes, results) = run_thread("autotune-faults-outcomes", &cfg);
    assert_eq!(bytes, fault_free_bytes(), "tuned config corrupted the file under faults");
    for (outcome, _) in &results {
        assert!(
            matches!(outcome, WriteOutcome::Flushed | WriteOutcome::Degraded),
            "worse than Degraded under a within-budget plan: {outcome:?}"
        );
    }
}

#[test]
fn single_member_partitions_ignore_crash_plans() {
    // A crash without a standby is meaningless; the plan is ignored
    // rather than deadlocking or panicking (documented in fault.rs).
    let cfg = TapiocaConfig {
        num_aggregators: NRANKS, // one member per partition
        buffer_size: 256,
        faults: Some(
            FaultPlan::seeded(1).with(FaultSpec::AggregatorCrash { partition: 0, round: 0 }),
        ),
        ..Default::default()
    };
    let (bytes, results) = run_thread("solo", &cfg);
    assert_eq!(bytes, fault_free_bytes());
    let total: IoStats = results.iter().fold(IoStats::default(), |mut acc, (_, s)| {
        acc.merge(s);
        acc
    });
    assert_eq!(total.reelections, 0, "no standby, no re-election");
}
