//! End-to-end protocol checking: run the real pipeline (both executors,
//! perturbed and not), then verify the recorded trace satisfies every
//! ordering invariant — and that a tampered trace does not.

use std::sync::Arc;

use tapioca::prelude::*;
use tapioca::sim_exec::{run_tapioca_sim, CollectiveSpec, GroupSpec, StorageConfig};
use tapioca_check::{check, parse_jsonl, ViolationKind};
use tapioca_mpi::{Runtime, SharedFile};
use tapioca_pfs::{AccessMode, LustreTunables};
use tapioca_topology::{theta_profile, MachineProfile, TopologyProvider};
use tapioca_trace::{Trace, TraceOp, Tracer};
use tapioca_workloads::hacc::{HaccIo, Layout};
use tapioca_workloads::ior::IorSpec;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tapioca-protocol-check");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

fn thread_trace(
    name: &str,
    profile: &MachineProfile,
    decls: &[Vec<WriteDecl>],
    cfg: &TapiocaConfig,
    seed: Option<u64>,
) -> Trace {
    let n = decls.len();
    let tracer = Tracer::new(profile.machine.num_ranks());
    let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg.clone() };
    let machine = Arc::new(profile.machine.clone());
    let path = tmp(name);
    let decls = decls.to_vec();
    let path2 = path.clone();
    let body = move |comm: tapioca_mpi::Comm| {
        let file = SharedFile::open_shared(&comm, &path2);
        let mine = decls[comm.rank()].clone();
        let mut io = Session::builder(&comm, file)
            .declarations(mine.clone())
            .config(cfg.clone())
            .topology(machine.clone())
            .build()
            .unwrap();
        for d in &mine {
            io.write(d.offset, &vec![0x5Au8; d.len as usize]).unwrap();
        }
        io.finalize();
    };
    match seed {
        Some(s) => Runtime::run_perturbed(n, s, body),
        None => Runtime::run(n, body),
    };
    std::fs::remove_file(&path).ok();
    tracer.drain()
}

fn sim_trace(profile: &MachineProfile, decls: &[Vec<WriteDecl>], cfg: &TapiocaConfig) -> Trace {
    let tracer = Tracer::new(profile.machine.num_ranks());
    let cfg = TapiocaConfig { tracer: Some(Arc::clone(&tracer)), ..cfg.clone() };
    let spec = CollectiveSpec {
        groups: vec![GroupSpec { file: 0, ranks: (0..decls.len()).collect(), decls: decls.to_vec() }],
        mode: AccessMode::Write,
    };
    let storage = StorageConfig::Lustre(LustreTunables::theta_optimized());
    run_tapioca_sim(profile, &storage, &spec, &cfg).unwrap();
    tracer.drain()
}

#[test]
fn thread_pipeline_trace_is_protocol_clean() {
    let profile = theta_profile(8, 2);
    let w = HaccIo { num_ranks: 16, particles_per_rank: 100, layout: Layout::StructOfArrays };
    let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 2048, ..Default::default() };
    let trace = thread_trace("thread-clean", &profile, &w.decls(), &cfg, None);
    assert!(trace.events().iter().any(|e| e.op == TraceOp::Fence), "expected a fenced trace");
    let v = check(&trace);
    assert!(v.is_empty(), "thread trace has violations: {v:?}");
}

#[test]
fn sim_pipeline_trace_is_protocol_clean() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 4096 };
    let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 1024, ..Default::default() };
    let trace = sim_trace(&profile, &w.decls(), &cfg);
    assert!(!trace.is_empty());
    let v = check(&trace);
    assert!(v.is_empty(), "sim trace has violations: {v:?}");
}

#[test]
fn unpipelined_thread_trace_is_protocol_clean() {
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 2000 };
    let cfg = TapiocaConfig {
        num_aggregators: 2,
        buffer_size: 512,
        pipelining: false,
        ..Default::default()
    };
    let v = check(&thread_trace("thread-nopipe", &profile, &w.decls(), &cfg, None));
    assert!(v.is_empty(), "unpipelined trace has violations: {v:?}");
}

#[test]
fn perturbed_interleavings_stay_protocol_clean() {
    // The loom-lite harness: same program, different seeded schedules;
    // the invariants must hold on every interleaving.
    let profile = theta_profile(8, 2);
    let w = IorSpec { num_ranks: 16, bytes_per_rank: 4096 };
    let cfg = TapiocaConfig { num_aggregators: 4, buffer_size: 1024, ..Default::default() };
    for seed in 1..=4u64 {
        let name = format!("perturbed-{seed}");
        let v = check(&thread_trace(&name, &profile, &w.decls(), &cfg, Some(seed)));
        assert!(v.is_empty(), "seed {seed} produced violations: {v:?}");
    }
}

#[test]
fn tampered_trace_is_caught() {
    // Take a genuine thread trace, violate the epoch discipline by
    // relabelling one put's round, and expect the checker to object.
    let profile = theta_profile(4, 2);
    let w = IorSpec { num_ranks: 8, bytes_per_rank: 1024 };
    let cfg = TapiocaConfig { num_aggregators: 2, buffer_size: 512, ..Default::default() };
    let trace = thread_trace("tampered", &profile, &w.decls(), &cfg, None);
    let mut events = trace.events().to_vec();
    let put = events
        .iter()
        .position(|e| e.op == TraceOp::RmaPut && e.round == 0)
        .expect("trace has a round-0 put");
    events[put].round += 1;
    let v = check(&Trace::from_events(events));
    assert!(
        v.iter().any(|v| v.kind == ViolationKind::PutOutsideEpoch),
        "tampering went undetected: {v:?}"
    );
}

#[test]
fn jsonl_roundtrip_preserves_the_verdict() {
    // Dump a real trace to JSONL (the checksim transport) and re-check
    // the parsed copy: serialization must not lose checker-relevant
    // metadata.
    let profile = theta_profile(4, 2);
    let w = IorSpec { num_ranks: 8, bytes_per_rank: 1024 };
    let cfg = TapiocaConfig { num_aggregators: 2, buffer_size: 512, ..Default::default() };
    let trace = thread_trace("jsonl-roundtrip", &profile, &w.decls(), &cfg, None);
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    let parsed = parse_jsonl(std::str::from_utf8(&buf).unwrap()).unwrap();
    assert_eq!(parsed, trace);
    assert!(check(&parsed).is_empty());
}
